#include "vm/fuse.h"

#include <utility>

#include "vm/decode.h"

namespace conair::vm {

using ir::Opcode;

namespace {

/** Is @p r a dense register reference (not a constant, not raw)? */
inline bool
isReg(OpRef r)
{
    return r < kConstRef;
}

/** If @p r names an integer (I64/I1) constant-pool entry, yields its
 *  payload.  F64/Ptr constants stay un-specialised: their handlers
 *  read the full RtValue through the generic paths. */
inline bool
intConst(const DecodedFunction &dfn, OpRef r, int64_t &out)
{
    if (r == kRawRef || r < kConstRef)
        return false;
    const RtValue &v = dfn.consts[r & ~kConstRef];
    if (v.kind != ir::Type::I64 && v.kind != ir::Type::I1)
        return false;
    out = v.i;
    return true;
}

struct AluParts
{
    uint8_t sub = 0;
    bool rc = false;
    uint32_t d = 0, a = 0, b = 0;
    int64_t imm = 0;
};

/**
 * Classifies @p di as a trap-free integer ALU component: a register
 * destination, a register first operand (commutative ops accept the
 * constant on either side), and a register or integer-immediate second
 * operand.  SDiv/SRem qualify only with an immediate divisor that can
 * neither trap (0) nor hit the INT64_MIN/-1 wrap special case (-1) —
 * those stay on the generic path that reproduces the trap exactly.
 */
bool
classifyAlu(const DecodedFunction &dfn, const DecodedInst &di,
            AluParts &out)
{
    switch (di.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        break;
      default:
        return false;
    }
    if (!di.hasDst)
        return false;

    const bool commutes = di.op == Opcode::Add || di.op == Opcode::Mul ||
                          di.op == Opcode::And || di.op == Opcode::Or ||
                          di.op == Opcode::Xor;
    OpRef a = di.a, b = di.b;
    int64_t imm = 0;
    if (!isReg(a) && commutes && isReg(b) && intConst(dfn, a, imm))
        std::swap(a, b); // fold the constant into the immediate slot
    if (!isReg(a))
        return false;

    out.sub = uint8_t(di.op);
    out.d = di.dst;
    out.a = a;
    if (isReg(b)) {
        if (di.op == Opcode::SDiv || di.op == Opcode::SRem)
            return false; // divisor value unknown: may trap
        out.rc = false;
        out.b = b;
        return true;
    }
    if (!intConst(dfn, b, imm))
        return false;
    if ((di.op == Opcode::SDiv || di.op == Opcode::SRem) &&
        (imm == 0 || imm == -1))
        return false;
    out.rc = true;
    out.imm = imm;
    return true;
}

/**
 * Pre-resolves the phi edge (@p pred -> @p target) for inline
 * application by the fused branch handlers: the edge must exist, cover
 * every phi of the target in phi order, fit the executor's fixed
 * scratch (kMaxInlinePhi), and reference only register/constant values.
 * On success @p ebegin is the edge's first index into dfn.phiCopies.
 * Phi-less targets always resolve (empty copy list).
 */
bool
resolveInlineEdge(const DecodedFunction &dfn, uint32_t pred,
                  uint32_t target, uint32_t &ebegin)
{
    const DecodedBlock &db = dfn.blocks[target];
    ebegin = 0;
    if (db.phiCount == 0)
        return true;
    if (db.phiCount > kMaxInlinePhi)
        return false;
    const PhiEdge *edge = nullptr;
    for (uint32_t i = 0; i < db.edgeCount; ++i) {
        const PhiEdge &e = dfn.phiEdges[db.edgeBegin + i];
        if (e.pred == pred) {
            edge = &e;
            break;
        }
    }
    if (!edge || edge->count != db.phiCount)
        return false;
    for (uint32_t k = 0; k < db.phiCount; ++k) {
        const PhiCopy &c = dfn.phiCopies[edge->begin + k];
        if (c.dst != dfn.insts[db.phiBegin + k].dst ||
            c.value == kRawRef)
            return false;
    }
    ebegin = edge->begin;
    return true;
}

/** The best record starting at index @p i of @p bi's body. */
FusedInst
classify(const DecodedFunction &dfn, uint32_t i, uint32_t blockEnd)
{
    const DecodedInst &di = dfn.insts[i];
    const bool hasNext = i + 1 < blockEnd;
    FusedInst r;

    AluParts alu;
    if (classifyAlu(dfn, di, alu)) {
        r.sub = alu.sub;
        r.rc = alu.rc;
        r.d = alu.d;
        r.a = alu.a;
        r.b = alu.b;
        r.imm = alu.imm;
        // arith+store: the following Store writes this result.  The
        // store component is fully delegated, so its address form does
        // not matter.
        if (hasNext) {
            const DecodedInst &nx = dfn.insts[i + 1];
            if (nx.op == Opcode::Store && nx.a == di.dst) {
                r.op = FusedOp::AluThenStore;
                return r;
            }
        }
        r.op = FusedOp::Alu;
        return r;
    }

    switch (di.op) {
      case Opcode::ICmpEq:
      case Opcode::ICmpNe:
      case Opcode::ICmpSlt:
      case Opcode::ICmpSle:
      case Opcode::ICmpSgt:
      case Opcode::ICmpSge: {
        if (di.a == kRawRef || di.b == kRawRef || !di.hasDst)
            break; // invalid operands: let the generic path diagnose
        r.sub = uint8_t(di.op);
        r.d = di.dst;
        r.a = di.a;
        r.b = di.b;
        // compare+branch: the canonical loop-head pair.
        if (hasNext) {
            const DecodedInst &nx = dfn.insts[i + 1];
            if (nx.op == Opcode::CondBr && nx.a == di.dst) {
                r.op = FusedOp::CmpBr;
                r.t0 = nx.t0;
                r.t1 = nx.t1;
                return r;
            }
        }
        r.op = FusedOp::Cmp;
        return r;
      }
      case Opcode::PtrAdd:
        if (di.a == kRawRef || di.b == kRawRef || !di.hasDst)
            break;
        r.op = FusedOp::PtrAdd;
        r.d = di.dst;
        r.a = di.a;
        r.b = di.b;
        return r;
      case Opcode::Load: {
        // load+arith: the arithmetic component runs strictly after the
        // (fallible, fully delegated) load, so any adjacent trap-free
        // ALU op fuses — no dataflow requirement.
        if (hasNext) {
            AluParts alu2;
            if (classifyAlu(dfn, dfn.insts[i + 1], alu2)) {
                r.op = FusedOp::LoadThenAlu;
                r.sub2 = alu2.sub;
                r.rc2 = alu2.rc;
                r.d2 = alu2.d;
                r.a2 = alu2.a;
                r.b2 = alu2.b;
                r.imm2 = alu2.imm;
                return r;
            }
        }
        r.op = FusedOp::Load;
        return r;
      }
      case Opcode::Store:
        r.op = FusedOp::Store;
        return r;
      case Opcode::Br:
        r.op = FusedOp::Br;
        r.t0 = di.t0;
        return r;
      case Opcode::CondBr:
        if (di.a == kRawRef)
            break;
        r.op = FusedOp::CondBr;
        r.a = di.a;
        r.t0 = di.t0;
        r.t1 = di.t1;
        return r;
      // Rare-but-burstable ops: generic execution, burst continues.
      case Opcode::Alloca:
      case Opcode::SDiv: // reg or trapping divisor (see classifyAlu)
      case Opcode::SRem:
      case Opcode::Add:  // operand forms classifyAlu rejected
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FCmpEq:
      case Opcode::FCmpNe:
      case Opcode::FCmpLt:
      case Opcode::FCmpLe:
      case Opcode::FCmpGt:
      case Opcode::FCmpGe:
      case Opcode::SiToFp:
      case Opcode::FpToSi:
      case Opcode::Zext:
        r.op = FusedOp::SoloCont;
        return r;
      // Everything that can switch frames, sleep, fail, or consult the
      // scheduler leaves the burst: the outer loop re-checks the full
      // stepwise conditions before continuing.
      default:
        break;
    }
    r.op = FusedOp::Solo;
    // Degraded compare/condbr/ptradd/alloca-class records fall through
    // here too when their operands were unusable; keep cheap ones in
    // the burst.
    if (di.op != Opcode::Call && di.op != Opcode::Ret &&
        di.op != Opcode::SchedHint && di.op != Opcode::Unreachable &&
        di.op != Opcode::Phi && di.op != Opcode::Br &&
        di.op != Opcode::CondBr)
        r.op = FusedOp::SoloCont;
    return r;
}

} // namespace

void
fuseFunction(DecodedFunction &dfn)
{
    auto ff = std::make_unique<FusedFunction>();
    ff->recs.resize(dfn.insts.size());

    for (uint32_t bi = 0; bi < dfn.blocks.size(); ++bi) {
        const DecodedBlock &db = dfn.blocks[bi];
        const uint32_t blockEnd = bi + 1 < dfn.blocks.size()
                                      ? dfn.blocks[bi + 1].phiBegin
                                      : uint32_t(dfn.insts.size());
        // Phi placeholders: only reachable when a block with phis is
        // entered without a branch; Solo delegates to the generic path,
        // which reports that exact trap.
        for (uint32_t i = db.phiBegin; i < db.first; ++i)
            ff->recs[i].op = FusedOp::Solo;
        for (uint32_t i = db.first; i < blockEnd; ++i) {
            FusedInst &r = ff->recs[i];
            r = classify(dfn, i, blockEnd);
            switch (r.op) {
              case FusedOp::CmpBr:
              case FusedOp::LoadThenAlu:
              case FusedOp::AluThenStore:
                ++ff->fusedHeads;
                break;
              default:
                break;
            }
            // Branches pre-resolve their targets' phi edges so the
            // handlers can skip the edge scan (predecessor == bi here).
            if (r.op == FusedOp::Br) {
                r.inl0 = resolveInlineEdge(dfn, bi, r.t0, r.e0);
            } else if (r.op == FusedOp::CondBr ||
                       r.op == FusedOp::CmpBr) {
                r.inl0 = resolveInlineEdge(dfn, bi, r.t0, r.e0);
                r.inl1 = resolveInlineEdge(dfn, bi, r.t1, r.e1);
            }
        }
    }
    dfn.fused = std::move(ff);
}

void
DecodedModule::fuseAll()
{
    totalFused_ = 0;
    for (auto &[fn, dfn] : byFn_) {
        fuseFunction(*dfn);
        totalFused_ += dfn->fused->fusedHeads;
    }
}

} // namespace conair::vm
