#include "vm/decode.h"

#include "support/diag.h"

namespace conair::vm {

using ir::Opcode;

namespace {

/** Mirror of the interpreter's chaos-window predicate: would executing
 *  this instruction end the current idempotent window? */
bool
instDirtiesWindow(const ir::Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Store:
        return true;
      case Opcode::Call: {
        if (inst.callee())
            return true;
        ir::Builtin b = inst.builtin();
        if (ir::builtinIsConAir(b))
            return false;
        // The §4.1 allowlist: compensation makes these re-executable.
        return b != ir::Builtin::Malloc && b != ir::Builtin::MutexLock &&
               b != ir::Builtin::MutexTimedLock;
      }
      default:
        return false;
    }
}

/** Builds the per-function flat arrays. */
class FunctionDecoder
{
  public:
    FunctionDecoder(DecodedFunction &out, const RegMap &map,
                    const std::vector<DelayRule> &delayRules,
                    const std::unordered_map<uint64_t, uint32_t> &ruleIndex,
                    const std::unordered_map<const ir::Function *,
                                             std::unique_ptr<DecodedFunction>>
                        &byFn)
        : out_(out), map_(map), delayRules_(delayRules),
          ruleIndex_(ruleIndex), byFn_(byFn)
    {}

    void
    run(const ir::Function &fn)
    {
        out_.fn = &fn;
        out_.regCount = map_.count();

        // Pass 1: number the blocks.
        uint32_t idx = 0;
        for (const auto &bb : fn.blocks())
            blockIndex_[bb.get()] = idx++;
        out_.blocks.resize(idx);

        // Pass 2: lower each block's instructions.
        idx = 0;
        for (const auto &bb : fn.blocks())
            decodeBlock(*bb, out_.blocks[idx++]);

        // Pass 3: group each block's leading phis into per-predecessor
        // parallel-copy lists (evaluated on block entry, not per step).
        idx = 0;
        for (const auto &bb : fn.blocks())
            decodePhiEdges(*bb, out_.blocks[idx++]);
    }

  private:
    OpRef
    refOf(const ir::Value *v)
    {
        using ir::ValueKind;
        switch (v->kind()) {
          case ValueKind::ConstInt: {
            auto *c = static_cast<const ir::ConstInt *>(v);
            return poolConst(RtValue::ofInt(c->value(), c->type()));
          }
          case ValueKind::ConstFloat:
            return poolConst(RtValue::ofFloat(
                static_cast<const ir::ConstFloat *>(v)->value()));
          case ValueKind::ConstNull:
            return poolConst(RtValue::ofPtr(Ptr{}));
          case ValueKind::GlobalAddr: {
            auto *g = static_cast<const ir::GlobalAddr *>(v);
            return poolConst(RtValue::ofPtr(
                Ptr{Ptr::Seg::Global, g->global()->id(), 0}));
          }
          case ValueKind::Argument:
          case ValueKind::Instruction:
            return map_.indexOf(v);
          case ValueKind::ConstStr:
          case ValueKind::FuncAddr:
            // Only valid as direct builtin operands; the executor reads
            // them through DecodedInst::src (and fatals on any other
            // use, exactly like the tree-walking getValue()).
            return kRawRef;
        }
        fatal("decode: unhandled value kind");
    }

    OpRef
    poolConst(RtValue v)
    {
        uint32_t id = uint32_t(out_.consts.size());
        if (id >= kConstRef - 1)
            fatal("decode: constant pool overflow");
        out_.consts.push_back(v);
        return kConstRef | id;
    }

    void
    decodeBlock(const ir::BasicBlock &bb, DecodedBlock &db)
    {
        db.phiBegin = uint32_t(out_.insts.size());
        bool in_phis = true;
        for (const auto &inst : bb.insts()) {
            if (in_phis && inst->opcode() == Opcode::Phi) {
                ++db.phiCount;
                if (!db.firstPhi)
                    db.firstPhi = inst.get();
                // A placeholder record: jumpTo skips past these, so it
                // only executes if a block with phis is entered without
                // a branch (the same trap the reference path reports).
                DecodedInst di;
                di.op = Opcode::Phi;
                di.src = inst.get();
                // The dst slot lets the block-transfer path pair each
                // phi with its parallel-copy entry (jumpToDecoded).
                di.hasDst = true;
                di.dst = map_.indexOf(inst.get());
                out_.insts.push_back(di);
                continue;
            }
            in_phis = false;
            out_.insts.push_back(decodeInst(*inst));
        }
        db.first = db.phiBegin + db.phiCount;
    }

    DecodedInst
    decodeInst(const ir::Instruction &inst)
    {
        DecodedInst di;
        di.op = inst.opcode();
        di.builtin = inst.builtin();
        di.type = inst.type();
        di.src = &inst;
        di.dirties = instDirtiesWindow(inst);
        di.imm = inst.opcode() == Opcode::Alloca
                     ? inst.allocaSize()
                     : int64_t(inst.hintId());
        di.nOps = uint16_t(inst.numOperands());
        if (inst.producesValue()) {
            di.hasDst = true;
            di.dst = map_.indexOf(&inst);
        }
        if (di.nOps > 0)
            di.a = refOf(inst.operand(0));
        if (di.nOps > 1)
            di.b = refOf(inst.operand(1));
        if (di.nOps > 2) {
            di.extra = uint32_t(out_.extraOps.size());
            for (unsigned i = 2; i < di.nOps; ++i)
                out_.extraOps.push_back(refOf(inst.operand(i)));
        }
        if (inst.numBlockOps() > 0 && inst.opcode() != Opcode::Phi)
            di.t0 = blockIndex_.at(inst.blockOp(0));
        if (inst.numBlockOps() > 1 && inst.opcode() != Opcode::Phi)
            di.t1 = blockIndex_.at(inst.blockOp(1));
        if (inst.opcode() == Opcode::Call && inst.callee()) {
            di.callee = inst.callee();
            auto it = byFn_.find(inst.callee());
            if (it == byFn_.end())
                fatal("decode: call to a function outside the module");
            di.calleeDfn = it->second.get();
        }
        if (inst.opcode() == Opcode::SchedHint) {
            auto it = ruleIndex_.find(inst.hintId());
            if (it != ruleIndex_.end()) {
                di.delay = &delayRules_[it->second];
                di.delayIndex = it->second;
            }
        }
        return di;
    }

    void
    decodePhiEdges(const ir::BasicBlock &bb, DecodedBlock &db)
    {
        if (db.phiCount == 0)
            return;
        db.edgeBegin = uint32_t(out_.phiEdges.size());
        // Collect the distinct predecessors named by the leading phis,
        // in first-appearance order (decode is deterministic).
        std::vector<const ir::BasicBlock *> preds;
        uint32_t seen = 0;
        for (const auto &inst : bb.insts()) {
            if (inst->opcode() != Opcode::Phi || seen++ == db.phiCount)
                break;
            for (unsigned i = 0; i < inst->numBlockOps(); ++i) {
                const ir::BasicBlock *p = inst->incomingBlock(i);
                bool known = false;
                for (const ir::BasicBlock *q : preds)
                    known |= q == p;
                if (!known)
                    preds.push_back(p);
            }
        }
        for (const ir::BasicBlock *pred : preds) {
            PhiEdge edge;
            edge.pred = blockIndex_.at(pred);
            edge.begin = uint32_t(out_.phiCopies.size());
            edge.count = 0;
            uint32_t n = 0;
            for (const auto &inst : bb.insts()) {
                if (inst->opcode() != Opcode::Phi || n++ == db.phiCount)
                    break;
                for (unsigned i = 0; i < inst->numBlockOps(); ++i) {
                    if (inst->incomingBlock(i) != pred)
                        continue;
                    out_.phiCopies.push_back(
                        {map_.indexOf(inst.get()),
                         refOf(inst->operand(i))});
                    ++edge.count;
                    break;
                }
            }
            // An edge list shorter than phiCount means some phi lacks
            // this predecessor; entry over that edge must trap exactly
            // like the reference path, so record the partial edge only
            // if complete and let the executor report the missing one.
            out_.phiEdges.push_back(edge);
        }
        db.edgeCount = uint32_t(out_.phiEdges.size()) - db.edgeBegin;
    }

    DecodedFunction &out_;
    const RegMap &map_;
    const std::vector<DelayRule> &delayRules_;
    const std::unordered_map<uint64_t, uint32_t> &ruleIndex_;
    const std::unordered_map<const ir::Function *,
                             std::unique_ptr<DecodedFunction>> &byFn_;
    std::unordered_map<const ir::BasicBlock *, uint32_t> blockIndex_;
};

} // namespace

DecodedModule::DecodedModule(
    const ir::Module &m, RegMapCache &maps,
    const std::vector<DelayRule> &delayRules,
    const std::unordered_map<uint64_t, uint32_t> &ruleIndex)
{
    // Create every shell first so call records can link cross-function
    // (including recursion and forward references).
    for (const auto &fn : m.functions())
        byFn_.emplace(fn.get(), std::make_unique<DecodedFunction>());
    for (const auto &fn : m.functions()) {
        FunctionDecoder dec(*byFn_.at(fn.get()), maps.of(fn.get()),
                            delayRules, ruleIndex, byFn_);
        dec.run(*fn);
        totalInsts_ += byFn_.at(fn.get())->insts.size();
    }
}

const DecodedFunction *
DecodedModule::of(const ir::Function *fn) const
{
    auto it = byFn_.find(fn);
    if (it == byFn_.end())
        fatal("DecodedModule: unknown function");
    return it->second.get();
}

} // namespace conair::vm
