/**
 * @file
 * Dense virtual-register numbering per function.
 *
 * Each frame's register file is a flat vector indexed by these numbers —
 * the VM analogue of the machine register image that the paper's
 * setjmp/longjmp checkpoints save and restore.
 */
#pragma once

#include <unordered_map>

#include "ir/function.h"

namespace conair::vm {

/** Maps a function's value-producing instructions and arguments to
 *  dense register indices. */
class RegMap
{
  public:
    explicit RegMap(const ir::Function &f);

    uint32_t indexOf(const ir::Value *v) const;
    uint32_t count() const { return count_; }

  private:
    std::unordered_map<const ir::Value *, uint32_t> index_;
    uint32_t count_ = 0;
};

/** Lazily builds and caches RegMaps for a module's functions. */
class RegMapCache
{
  public:
    const RegMap &of(const ir::Function *f);

  private:
    std::unordered_map<const ir::Function *, RegMap> maps_;
};

} // namespace conair::vm
