/**
 * @file
 * MiniVM run configuration: scheduling policy, interleaving forcing,
 * resource limits, and ConAir runtime knobs.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace conair::obs {
class FlightRecorder;
class MetricsRegistry;
}

namespace conair::obs::prof {
class PhaseProfiler;
}

namespace conair::vm {

/** Thread scheduling policies. */
enum class SchedPolicy {
    RoundRobin,   ///< fixed quantum, cycle through runnable threads
    Random,       ///< seeded random switches (production-like jitter)
    Pct,          ///< probabilistic concurrency testing (see below)
    PreemptBound, ///< preemption-bounded search (see below)
};

const char *schedPolicyName(SchedPolicy p);

/** Inverse of schedPolicyName ("rr", "random", "pct", "pb"); returns
 *  false when @p name is not a policy name. */
bool schedPolicyFromName(const std::string &name, SchedPolicy &out);

/**
 * Which execution engine interprets the program.  All three are
 * deterministic and produce tick-for-tick identical runs (enforced by
 * tests/vm/decode_diff_test.cpp and the cross-engine differential
 * fuzzer in tests/property/); Decoded is the production engine,
 * Reference exists as the differential-testing baseline and for
 * measuring the decode layer's speedup, and Fused layers decode-time
 * superinstruction fusion plus a dense-dispatch burst executor on top
 * of Decoded (fuse.h, docs/VM_ENGINE.md).
 */
enum class ExecEngine : uint8_t {
    Decoded,   ///< pre-decoded flat arrays (decode.h), default
    Reference, ///< original IR tree walk (hash per operand resolve)
    Fused,     ///< Decoded + superinstruction fusion (fuse.h)
};

/**
 * Forces a buggy interleaving: when a thread executes `hint(id)` in
 * MiniC (a SchedHint instruction), it sleeps for @ref delayTicks of
 * virtual time, letting other threads overtake it.  This is the
 * deterministic analogue of the paper's "insert sleeps into buggy code
 * regions" methodology (§5).
 */
struct DelayRule
{
    uint64_t hintId;
    uint64_t delayTicks;

    /**
     * How many times the delay fires before becoming inert; 0 means
     * every execution.  Setting 1 models a *transient* timing anomaly:
     * whole-program rollback baselines escape the bug on reexecution
     * because the anomaly does not repeat (fire counts deliberately
     * survive their rollbacks).
     */
    uint64_t maxFires = 0;

    bool operator==(const DelayRule &) const = default;
};

/**
 * A recorded thread interleaving the scheduler reproduces verbatim.
 *
 * Replay rests on one structural fact: pickThread() is the VM's only
 * interleaving choice point.  Everything else that varies between runs
 * — per-thread decision RNG streams, the app-visible rand(), sleep and
 * wake timing, PCT priorities — is a deterministic function of the
 * seeds plus the order threads execute in.  So a run is pinned exactly
 * by the sequence of scheduler switches: (global step count, thread
 * chosen).  The interpreter consumes this list instead of consulting a
 * policy: no quantum expiry, no scheduling-point sampling, no scheduler
 * RNG draws — the recorded thread runs until the next recorded switch
 * step.
 *
 * The obs/replay subsystem (ReplayLog) records, serialises, minimises
 * and verifies these schedules; this struct is just the part the VM
 * consumes, kept here so the VM does not depend on the log format.
 */
struct ReplaySchedule
{
    struct Switch
    {
        uint64_t step; ///< RunStats::steps at the scheduling decision
        uint32_t tid;  ///< thread handed the CPU

        bool operator==(const Switch &) const = default;
    };

    /** Switch list in execution order; steps strictly increase. */
    std::vector<Switch> switches;

    /**
     * Tolerant mode: a switch that is inapplicable at its recorded
     * step (the named thread does not exist or is not runnable) is
     * skipped, and when the current thread cannot continue the lowest
     * runnable id runs — instead of declaring divergence.  ddmin
     * minimisation evaluates candidate subsets this way, since
     * removing switches legitimately changes the downstream execution.
     * Exact replay (the repro path) leaves this false: any divergence
     * hard-fails the run with RunResult::replayDivergence set.
     */
    bool tolerant = false;
};

/** All the knobs for one VM run. */
struct VmConfig
{
    SchedPolicy policy = SchedPolicy::Random;
    uint64_t seed = 1;

    /** Execution engine (see ExecEngine). */
    ExecEngine engine = ExecEngine::Decoded;

    /**
     * Scheduler fast path: when exactly one thread is runnable and no
     * sleeper can become due, execute the rest of the quantum in a
     * burst without re-consulting the scheduler.  Charges the same
     * clock ticks and RNG draws as stepwise scheduling, so seeded
     * interleavings are unchanged; off only for engine benchmarking.
     */
    bool schedFastPath = true;

    /** Per-thread last-block memory-handle cache (decoded engine). */
    bool memHandleCache = true;

    /** Preemption quantum for RoundRobin / expected run length for
     *  Random (instructions between involuntary switches). */
    uint64_t quantum = 50;

    /**
     * @name Systematic schedule exploration (PCT / preemption bounding)
     *
     * SchedPolicy::Pct implements probabilistic concurrency testing
     * (Burckhardt et al., ASPLOS 2010): every thread gets a random
     * priority above @ref pctDepth at creation, the scheduler always
     * runs the highest-priority runnable thread, and `pctDepth - 1`
     * priority-change points are sampled at seeded *scheduling tick*
     * counts in [1, pctHorizon]; when the global tick count crosses
     * point i, the running thread's priority drops into the low band
     * (`pctDepth - 2 - i`), forcing a context switch exactly there.
     * A scheduling tick is a shared-memory store or a synchronisation
     * builtin (RunStats::schedTicks) — the only places a racy window
     * can open — so the horizon k stays small and for a bug of depth
     * d each run finds it with probability >= 1/(n * k^(d-1)): a few
     * thousand seeds reliably hit the ordering-sensitive windows the
     * hand-scripted delay rules force.
     *
     * SchedPolicy::PreemptBound is the bounded-preemption variant:
     * cooperative scheduling (threads run until they block, finish, or
     * yield) except for @ref preemptBound forced switches at seeded
     * tick counts in the same horizon.
     *
     * Both are fully deterministic given (seed, depth/bound, horizon):
     * same inputs, same interleaving, tick for tick.
     * @{
     */

    /** PCT depth d: 1 + number of priority-change points. */
    uint64_t pctDepth = 3;

    /** Horizon k: change/preemption points are drawn uniformly from
     *  [1, pctHorizon] scheduling ticks (shared stores + sync ops).
     *  Should approximate the program's clean-run schedTicks count
     *  (campaigns calibrate it with calibrateHorizon). */
    uint64_t pctHorizon = 2'000;

    /** Forced preemptions for SchedPolicy::PreemptBound. */
    uint64_t preemptBound = 2;

    /**
     * Explicit change/preemption points (scheduling-tick counts) for
     * Pct/PreemptBound: when non-empty, the scheduler uses exactly
     * these points instead of sampling them from the seed.  Thread
     * priorities and per-thread decision streams still derive from
     * @ref seed, so (seed, points) pins the schedule completely — the
     * coverage-guided explorer mutates this list while keeping the
     * rest of a corpus schedule fixed (src/explore/guided.h).  The
     * list need not be sorted or duplicate-free; the scheduler sorts
     * a copy and consumes colliding points together, exactly like the
     * sampled path.
     */
    std::vector<uint64_t> schedPoints;

    /** @} */

    /** Interleaving forcing (empty = natural scheduling). */
    std::vector<DelayRule> delays;

    /** Abort the run after this many executed instructions. */
    uint64_t maxSteps = 50'000'000;

    /** Hang detector: a blocked lock waits at most this long before the
     *  VM declares the run hung (plain mutex_lock has no timeout; this
     *  bound exists so benchmark runs terminate). */
    uint64_t hangTimeout = 2'000'000;

    /**
     * ConAir runtime: retry budget per thread (paper default is one
     * million; benches lower it so unrecoverable sites fail fast).
     */
    int64_t maxRetries = 1'000'000;

    /** ConAir runtime: upper bound of the random deadlock back-off. */
    uint64_t backoffMax = 64;

    /** Seed for the application-visible rand() builtin. */
    uint64_t appSeed = 99;

    /**
     * @name Whole-program checkpoint/rollback baseline
     *
     * Models the traditional recovery systems ConAir is compared
     * against (Rx/ASSURE-style, paper §1 and §7): periodic snapshots of
     * the *entire* program state (all threads + memory), multi-threaded
     * rollback on failure, and a perturbed schedule on reexecution.
     * The snapshot cost is charged to virtual time proportionally to
     * the state size — the overhead ConAir avoids by design.
     * @{
     */

    /** Steps between whole-program snapshots; 0 disables the mode. */
    uint64_t wpCheckpointInterval = 0;

    /** Rollback attempts before the failure is allowed through. */
    unsigned wpMaxRecoveries = 8;

    /** Virtual ticks charged per snapshotted memory cell. */
    double wpSnapshotCostPerCell = 0.25;

    /** @} */

    /**
     * @name Chaos rollback injection (idempotency validation)
     *
     * When enabled, the VM randomly rolls a thread back to its most
     * recent ConAir checkpoint whenever the thread is inside a *clean*
     * window (no idempotency-destroying instruction executed since the
     * checkpoint).  §2.2's correctness argument says such rollbacks
     * can never change program semantics; the property tests run every
     * hardened application under chaos and require bit-identical
     * results.
     * @{
     */

    /** Expected instructions between injected rollbacks; 0 disables. */
    uint64_t chaosRollbackEveryN = 0;

    /** Upper bound on injected rollbacks (termination guarantee). */
    uint64_t chaosMaxRollbacks = 10'000;

    /** @} */

    /**
     * @name Observability (src/obs/)
     *
     * Both hooks are pure observation: recording never perturbs the
     * schedule, RNG streams, clock, or stats, so an instrumented run
     * is tick-for-tick identical to an uninstrumented one (pinned by
     * tests/obs/vm_trace_test.cpp).  nullptr (the default) disables a
     * hook; the disabled path is a branch on the pointer with no
     * allocation.  Neither pointer is owned by the VM.
     * @{
     */

    /** Flight recorder receiving typed trace events (scheduler
     *  decisions, checkpoints, rollbacks, lock traffic, ...). */
    obs::FlightRecorder *recorder = nullptr;

    /** Metrics registry receiving counters and histograms (recovery
     *  latency, retries per site, checkpoint-to-failure distance). */
    obs::MetricsRegistry *metrics = nullptr;

    /** Phase profiler attributing retired steps and waited ticks to
     *  VM phases plus per-recovery-episode cost breakdowns
     *  (src/obs/profile/).  Same passivity contract as the recorder:
     *  a profiled run is tick- and memDigest-identical to a bare one
     *  on all three engines (tests/obs/vm_profile_test.cpp). */
    obs::prof::PhaseProfiler *profiler = nullptr;

    /**
     * Diagnosis recording mode: additionally record a SharedLoad /
     * SharedStore event (packed cell address + value bits + site tag)
     * for every non-stack memory access, in both engines.  Needs
     * @ref recorder set; still pure observation (tick-identical runs),
     * but the event volume is ~1 per scheduling tick, so it is off by
     * default and enabled only when a trace will feed the postmortem
     * diagnosis engine (src/obs/postmortem/).
     */
    bool recordSharedAccesses = false;

    /** @} */

    /**
     * Deterministic replay (src/obs/replay/): when set, the scheduler
     * ignores @ref policy / @ref quantum / the exploration knobs and
     * drives the run through the recorded switch list instead — no
     * search, no scheduler RNG draws.  The pointed-to schedule is
     * borrowed and must outlive the run.  See ReplaySchedule for the
     * sufficiency argument and docs/OBSERVABILITY.md for the
     * faithfulness contract.
     */
    const ReplaySchedule *replay = nullptr;
};

} // namespace conair::vm
