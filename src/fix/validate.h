/**
 * @file
 * Automated patch validation: proves a synthesized fix eliminated the
 * diagnosed failure *and* broke nothing else, with no human in the
 * loop.  Three obligations:
 *
 *  1. *Replay check*: the kernel's ddmin-minimized failing schedule
 *     (replay-logs/<kernel>.replay) is replayed tolerantly against the
 *     patched build — the patch changed the instruction stream, so the
 *     recorded switch list is applied best-effort — and the run must
 *     now end correct.  This is the "the exact buggy interleaving no
 *     longer fires" proof.
 *  2. *Campaign check*: the full exploration matrix re-runs on the
 *     patched build with the differential oracles on — 0 failing
 *     schedules, 0 deadlock schedules, 0 cross-engine divergences.
 *     This is the "no failure anywhere, no new bug introduced" proof.
 *  3. *Overhead check*: a clean run of the patched build must succeed
 *     and execute at most maxOverhead times the baseline's steps — a
 *     fix that trades the bug for a livelock (a wait loop that never
 *     satisfies, a lock convoy) blows this bound.
 */
#pragma once

#include <cstdint>
#include <string>

#include "explore/campaign.h"
#include "obs/replay/replay_log.h"

namespace conair::fix {

/** Validation knobs. */
struct ValidationOptions
{
    /** Campaign shape for obligation 2 (seeds, policies, workers).
     *  Differential legs are forced on; stopAfterFailures, diagnosis,
     *  and artifact dirs are forced off. */
    explore::CampaignOptions campaign;

    /** Clean-run configuration of the kernel (AppSpec::cleanConfig)
     *  for obligation 3. */
    vm::VmConfig cleanConfig;

    /** Patched/baseline clean-run step ratio ceiling. */
    double maxOverhead = 1.3;
};

/** Everything the validator measured. */
struct ValidationResult
{
    // Obligation 1 (skipped when no log was provided).
    bool replayChecked = false;
    bool replayFailureGone = false;
    std::string replayDetail; ///< outcome summary of the patched replay

    // Obligation 2.
    bool campaignRan = false;
    uint64_t schedules = 0;
    uint64_t failing = 0;
    uint64_t deadlocks = 0;
    uint64_t divergences = 0;
    uint64_t inconclusive = 0;

    // Obligation 3.
    bool overheadChecked = false;
    double overhead = 0;
    bool overheadOk = false;

    std::string error; ///< first hard failure ("" when none)

    /** All attempted obligations passed. */
    bool
    ok() const
    {
        return error.empty() && (!replayChecked || replayFailureGone) &&
               campaignRan && failing == 0 && deadlocks == 0 &&
               divergences == 0 && overheadChecked && overheadOk;
    }
};

/**
 * Validates @p patched against @p baseline — the campaign target of the
 * *unpatched* kernel, whose expectations (output, exit) the patched
 * build must still meet.  @p minimizedLog is the kernel's minimized
 * failing-schedule replay log (null skips obligation 1; it was
 * recorded from baseline.plain, not the patched build).
 */
ValidationResult validatePatch(const ir::Module &patched,
                               const explore::Target &baseline,
                               const obs::replay::ReplayLog *minimizedLog,
                               const ValidationOptions &opts);

} // namespace conair::fix
