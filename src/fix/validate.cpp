#include "fix/validate.h"

#include "obs/replay/replay_run.h"
#include "vm/interp.h"

namespace conair::fix {

namespace {

bool
meetsExpectations(const explore::Target &t, const vm::RunResult &r)
{
    if (r.outcome != vm::Outcome::Success)
        return false;
    if (t.checkOutput && r.output != t.expectedOutput)
        return false;
    return r.exitCode == t.expectedExit;
}

} // namespace

ValidationResult
validatePatch(const ir::Module &patched, const explore::Target &baseline,
              const obs::replay::ReplayLog *minimizedLog,
              const ValidationOptions &opts)
{
    ValidationResult res;

    // Obligation 1: the minimized failing schedule, replayed tolerantly
    // (the patch changed the instruction stream, so recorded switch
    // steps land best-effort), must end correct on the patched build.
    if (minimizedLog) {
        res.replayChecked = true;
        vm::RunResult r = obs::replay::replayTolerant(
            patched, *minimizedLog, minimizedLog->switches,
            minimizedLog->engine);
        res.replayFailureGone = meetsExpectations(baseline, r);
        res.replayDetail = vm::outcomeName(r.outcome);
        if (!r.failureTag.empty())
            res.replayDetail += " (" + r.failureTag + ")";
        else if (r.outcome == vm::Outcome::Success &&
                 !res.replayFailureGone)
            res.replayDetail += " (wrong output)";
        if (!res.replayFailureGone)
            res.error = "minimized replay still fails on the patched "
                        "build: " +
                        res.replayDetail;
    }

    // Obligation 3 first: a livelocked patch would otherwise burn the
    // whole campaign budget before being caught.
    {
        vm::RunResult base = vm::runProgram(*baseline.plain,
                                            opts.cleanConfig);
        vm::RunResult fixed = vm::runProgram(patched, opts.cleanConfig);
        res.overheadChecked = true;
        if (base.outcome != vm::Outcome::Success) {
            res.error = "baseline clean run did not succeed";
            return res;
        }
        if (!meetsExpectations(baseline, fixed)) {
            res.overheadOk = false;
            if (res.error.empty())
                res.error = "patched clean run did not succeed: " +
                            std::string(vm::outcomeName(fixed.outcome));
            return res;
        }
        res.overhead = base.stats.steps == 0
                           ? 0.0
                           : double(fixed.stats.steps) /
                                 double(base.stats.steps);
        res.overheadOk = res.overhead <= opts.maxOverhead;
        if (!res.overheadOk && res.error.empty())
            res.error = "patched clean-run overhead exceeds bound";
    }

    // Obligation 2: full campaign matrix on the patched build, all
    // differential oracles armed, nothing allowed to fail.
    explore::Target t = baseline;
    t.plain = &patched;
    t.hardened = nullptr;
    t.mustRecover = false;
    t.horizon = explore::calibrateHorizon(patched,
                                          opts.campaign.maxSteps);

    explore::CampaignOptions copts = opts.campaign;
    copts.differential = true;
    copts.fusedDifferential = true;
    copts.stopAfterFailures = 0;
    copts.collectMetrics = false;
    copts.diagnoseFailures = false;
    copts.abortArtifactDir.clear();
    copts.replayLogDir.clear();

    explore::CampaignReport rep = explore::runCampaign({t}, copts);
    const explore::TargetReport &tr = rep.targets[0];
    res.campaignRan = true;
    res.schedules = tr.schedules;
    res.failing = tr.failingSchedules;
    res.deadlocks = tr.deadlockSchedules;
    res.divergences = tr.divergences;
    res.inconclusive = tr.inconclusive;
    if (res.error.empty()) {
        if (res.failing > 0)
            res.error = "patched build still fails under exploration";
        else if (res.deadlocks > 0)
            res.error = "patched build deadlocks under exploration";
        else if (res.divergences > 0)
            res.error = "patched build diverges across engines";
    }
    return res;
}

} // namespace conair::fix
