/**
 * @file
 * Automated fix synthesis from postmortem diagnoses (src/fix/).
 *
 * ConAir recovers from concurrency failures without fixing them; the
 * postmortem engine (src/obs/postmortem/) then reconstructs *why* a
 * failure fired — the racy global, the conflicting access pair, the
 * switch window, and a bug-pattern verdict.  This engine closes the
 * remaining gap: it consumes that diagnosis and synthesizes a minimal
 * source-level fix as a verifier-clean IR-to-IR transform over a clone
 * of the unhardened module, one strategy per verdict:
 *
 *  - OrderViolation -> WaitForValue: every read of the racy global in
 *    a non-publishing function is guarded by a wait loop that sleeps
 *    (virtual time, so the enabling writer is guaranteed to run) until
 *    the global has left its initial value — the flag/pointer-publish
 *    idiom the paper's order bugs (ZSNES, HTTrack, MozillaXP, ...)
 *    all follow;
 *  - AtomicityViolation / LostUpdate -> LockGuard: the broken
 *    read-modify-write / check-then-act spans are enclosed in a mutex,
 *    preferring the existing lock that already guards most accesses of
 *    the global (lockset affinity) and minting a fresh one only when
 *    no access is ever protected;
 *  - Deadlock -> LockOrder: the inverted nested acquisition is
 *    normalized to the canonical (declaration) order by hoisting the
 *    inner lock in front of the outer one — critical-section
 *    coarsening, never a narrowing.
 *
 * Synthesis never trusts itself: the patched module must re-verify
 * (ir::verifyModule), lock-order fixes re-run the lockset analysis to
 * prove all nestings canonical, and the companion validator
 * (fix/validate.h) proves the patch regression-free dynamically —
 * minimized-replay check, full campaign matrix re-run, clean-run
 * overhead bound.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/postmortem/diagnosis.h"

namespace conair::ir {
class Module;
}

namespace conair::fix {

/** The fix strategies, one per diagnosable bug pattern. */
enum class Strategy : uint8_t {
    None,         ///< no fix synthesized
    WaitForValue, ///< order violation: wait until the global is published
    LockGuard,    ///< atomicity violation / lost update: mutex the span
    LockOrder,    ///< deadlock: normalize nested acquisition order
};

/** Stable lowercase name ("wait-for-value", "lock-guard", ...). */
const char *strategyName(Strategy s);

/** One edit the patch applied, for the human/JSON patch report. */
struct PatchEdit
{
    std::string kind;     ///< "wait-loop", "lock-span", "wrap-function",
                          ///< "reorder-locks", "add-mutex"
    std::string function; ///< enclosing function ("" for module-level)
    std::string detail;   ///< one-line description
};

/** A synthesized fix: the patched module plus its provenance. */
struct FixPlan
{
    bool ok = false;
    std::string error; ///< one-line reason when !ok

    Strategy strategy = Strategy::None;
    obs::pm::Verdict verdict = obs::pm::Verdict::Unknown;
    std::string program;   ///< kernel the diagnosis came from
    std::string variable;  ///< racy global the fix protects ("" for
                           ///< pure lock-order fixes)
    std::string mutexName; ///< mutex used/minted ("" for wait fixes)
    bool usedExistingMutex = false;

    std::vector<PatchEdit> edits;

    /** The patched module (verifier-clean); null when !ok. */
    std::unique_ptr<ir::Module> patched;
};

/**
 * Synthesizes a fix for @p report's primary diagnosis against
 * @p original — the *unhardened* module the diagnosis was computed
 * from.  @p original is cloned, never mutated.  Fails (ok = false,
 * one-line error) when the report carries no usable diagnosis, the
 * verdict has no strategy, the strategy's preconditions do not hold,
 * or the patched module does not re-verify.
 */
FixPlan synthesizeFix(const ir::Module &original,
                      const obs::pm::RecoveryReport &report);

} // namespace conair::fix
