#include "fix/lockset.h"

#include <algorithm>

#include "analysis/callgraph.h"
#include "analysis/memory_class.h"

namespace conair::fix {

using ir::BasicBlock;
using ir::Builtin;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Opcode;

const Lockset LocksetAnalysis::empty_;

const Global *
lockOperand(const Instruction *inst)
{
    if (inst->opcode() != Opcode::Call ||
        inst->callee() != nullptr)
        return nullptr;
    Builtin b = inst->builtin();
    if (b != Builtin::MutexLock && b != Builtin::MutexUnlock &&
        b != Builtin::MutexTimedLock)
        return nullptr;
    return analysis::rootGlobal(inst->operand(0));
}

namespace {

Lockset
intersect(const Lockset &a, const Lockset &b)
{
    Lockset out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out),
                          [](const Global *x, const Global *y) {
                              return x->id() < y->id();
                          });
    return out;
}

void
insertLock(Lockset &s, const Global *g)
{
    auto it = std::lower_bound(s.begin(), s.end(), g,
                               [](const Global *x, const Global *y) {
                                   return x->id() < y->id();
                               });
    if (it == s.end() || *it != g)
        s.insert(it, g);
}

void
eraseLock(Lockset &s, const Global *g)
{
    auto it = std::find(s.begin(), s.end(), g);
    if (it != s.end())
        s.erase(it);
}

/** Per-function forward dataflow; top is modelled as "not yet seen". */
struct FuncFlow
{
    const Function *fn;
    // Block-entry locksets; presence in the map means "reached".
    std::unordered_map<const BasicBlock *, Lockset> blockIn;
};

} // namespace

LocksetAnalysis::LocksetAnalysis(const ir::Module &m)
{
    // Entry locksets: thread entries and main start empty; every other
    // function meets (intersects) the locksets of its call sites.
    // Fixpoint: entry sets only shrink, so iterate until stable.
    analysis::CallGraph cg(m);

    std::unordered_map<const Function *, bool> isRoot;
    if (const Function *mainFn = m.findFunction("main"))
        isRoot[mainFn] = true;
    for (const Function *f : cg.threadEntries())
        isRoot[f] = true;

    // "Unknown" entry sets are top; roots are bottom (empty).
    std::unordered_map<const Function *, bool> entryKnown;
    for (const auto &f : m.functions()) {
        if (isRoot.count(f.get())) {
            entry_[f.get()] = {};
            entryKnown[f.get()] = true;
        } else {
            entryKnown[f.get()] = false;
        }
    }

    // Locksets observed at each call site, refreshed per iteration.
    std::unordered_map<const Instruction *, Lockset> callsiteLocks;

    auto flowFunction = [&](const Function &f) {
        // Forward intersection dataflow over the CFG, seeded with the
        // function's entry lockset.  Deterministic: worklist in block
        // list order.
        std::unordered_map<const BasicBlock *, Lockset> in;
        std::unordered_map<const BasicBlock *, bool> reached;
        const BasicBlock *entryBB = f.entry();
        if (!entryBB)
            return;
        in[entryBB] = entry_[&f];
        reached[entryBB] = true;

        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &bbPtr : f.blocks()) {
                const BasicBlock *bb = bbPtr.get();
                if (!reached[bb])
                    continue;
                Lockset cur = in[bb];
                for (const auto &instPtr : bb->insts()) {
                    const Instruction *inst = instPtr.get();
                    at_[inst] = cur;
                    if (inst->opcode() == Opcode::Call &&
                        !inst->callee()) {
                        const Global *g = lockOperand(inst);
                        if (g && inst->builtin() == Builtin::MutexLock)
                            insertLock(cur, g);
                        else if (g && inst->builtin() ==
                                          Builtin::MutexUnlock)
                            eraseLock(cur, g);
                        // MutexTimedLock: may time out, never added.
                    } else if (inst->opcode() == Opcode::Call &&
                               inst->callee()) {
                        callsiteLocks[inst] = cur;
                    }
                }
                for (const BasicBlock *succ : bb->successors()) {
                    if (!reached[succ]) {
                        reached[succ] = true;
                        in[succ] = cur;
                        changed = true;
                    } else {
                        Lockset met = intersect(in[succ], cur);
                        if (met != in[succ]) {
                            in[succ] = met;
                            changed = true;
                        }
                    }
                }
            }
        }
    };

    // Outer fixpoint over entry locksets.
    bool stable = false;
    unsigned rounds = 0;
    while (!stable && rounds++ < 64) {
        stable = true;
        at_.clear();
        callsiteLocks.clear();
        for (const auto &f : m.functions())
            if (entryKnown[f.get()])
                flowFunction(*f);
        for (const auto &f : m.functions()) {
            if (isRoot.count(f.get()))
                continue;
            const auto &callers = cg.callersOf(f.get());
            bool any = false;
            Lockset met;
            for (const auto &edge : callers) {
                auto it = callsiteLocks.find(edge.site);
                if (it == callsiteLocks.end())
                    continue; // caller not (yet) analysed: treat as top
                if (!any) {
                    met = it->second;
                    any = true;
                } else {
                    met = intersect(met, it->second);
                }
            }
            if (!any)
                continue; // unreached function: entry set stays top
            if (!entryKnown[f.get()] || entry_[f.get()] != met) {
                entry_[f.get()] = met;
                entryKnown[f.get()] = true;
                stable = false;
            }
        }
    }
    // Functions never reached keep an empty (bottom-ish) entry set so
    // lookups stay total; they contribute no nested pairs below
    // because at_ holds no lockset for their instructions.
    for (const auto &f : m.functions())
        if (!entryKnown[f.get()])
            entry_[f.get()] = {};

    // Nested pairs, in deterministic module order.
    for (const auto &f : m.functions()) {
        for (const auto &bbPtr : f->blocks()) {
            for (const auto &instPtr : bbPtr->insts()) {
                const Instruction *inst = instPtr.get();
                if (inst->opcode() != Opcode::Call || inst->callee() ||
                    inst->builtin() != Builtin::MutexLock)
                    continue;
                const Global *inner = lockOperand(inst);
                if (!inner)
                    continue;
                auto it = at_.find(inst);
                if (it == at_.end())
                    continue;
                for (const Global *outer : it->second)
                    pairs_.push_back({outer, inner, f.get(), inst});
            }
        }
    }
}

const Lockset &
LocksetAnalysis::entryLocks(const Function *f) const
{
    auto it = entry_.find(f);
    return it == entry_.end() ? empty_ : it->second;
}

const Lockset &
LocksetAnalysis::locksAt(const Instruction *inst) const
{
    auto it = at_.find(inst);
    return it == at_.end() ? empty_ : it->second;
}

bool
LocksetAnalysis::heldAt(const Instruction *inst,
                        const Global *mutex) const
{
    const Lockset &s = locksAt(inst);
    return std::find(s.begin(), s.end(), mutex) != s.end();
}

} // namespace conair::fix
