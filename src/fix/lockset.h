/**
 * @file
 * Interprocedural must-lockset analysis for fix synthesis (src/fix/).
 *
 * Computes, for every instruction, the set of mutex globals that are
 * *definitely* held when it executes — the must-lockset.  The synthesis
 * engine uses it three ways:
 *
 *  - lock *affinity*: which existing mutex already guards most accesses
 *    of a diagnosed racy global (atomicity fixes reuse that mutex
 *    instead of inventing a second, conflicting lock);
 *  - *skip rules*: a function whose racy accesses are already protected
 *    by the chosen mutex must not be wrapped again (a second
 *    acquisition of a non-reentrant mutex is a self-deadlock);
 *  - *lock-order normalization*: the nested-acquisition pairs
 *    (outer held while inner is acquired) are the input to the deadlock
 *    fix, and re-checking them on the patched module is the proof that
 *    a fix introduced no inversion.
 *
 * The analysis is deliberately conservative in the must direction:
 * merges intersect, MutexTimedLock never adds (it may time out), and a
 * function's entry lockset is the fixpoint intersection over all its
 * call sites' locksets (thread entries and main start empty).  Calls do
 * not invalidate the caller's lockset — MiniC kernels never unlock a
 * caller's mutex from a callee, and over-approximating "still held"
 * only ever makes the synthesizer *skip* a wrap or *detect* a nesting,
 * both of which fail safe (skip rules err towards no edit; nesting
 * detection errs towards reporting a pair).
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/module.h"

namespace conair::fix {

/** A must-lockset: mutex globals sorted by Global::id (set semantics). */
using Lockset = std::vector<const ir::Global *>;

/** One nested acquisition: lock(inner) executed while outer is held. */
struct NestedPair
{
    const ir::Global *outer = nullptr;
    const ir::Global *inner = nullptr;
    const ir::Function *fn = nullptr;      ///< where inner is acquired
    const ir::Instruction *lockInst = nullptr; ///< the inner MutexLock
};

/** The whole-module analysis result. */
class LocksetAnalysis
{
  public:
    explicit LocksetAnalysis(const ir::Module &m);

    /** Mutexes definitely held on entry to @p f. */
    const Lockset &entryLocks(const ir::Function *f) const;

    /** Mutexes definitely held immediately *before* @p inst. */
    const Lockset &locksAt(const ir::Instruction *inst) const;

    /** True when @p mutex is definitely held before @p inst. */
    bool heldAt(const ir::Instruction *inst,
                const ir::Global *mutex) const;

    /** Every nested acquisition in the module, in deterministic
     *  (function order, program order) sequence. */
    const std::vector<NestedPair> &nestedPairs() const
    {
        return pairs_;
    }

  private:
    std::unordered_map<const ir::Function *, Lockset> entry_;
    std::unordered_map<const ir::Instruction *, Lockset> at_;
    std::vector<NestedPair> pairs_;
    static const Lockset empty_;
};

/** The mutex global a MutexLock/MutexUnlock/MutexTimedLock call
 *  operates on, or nullptr when @p inst is no such call or its operand
 *  does not root at a global. */
const ir::Global *lockOperand(const ir::Instruction *inst);

} // namespace conair::fix
