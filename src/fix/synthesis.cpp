#include "fix/fix.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cfg_utils.h"
#include "analysis/dominators.h"
#include "analysis/memory_class.h"
#include "fix/lockset.h"
#include "ir/builder.h"
#include "ir/clone.h"
#include "ir/module.h"
#include "ir/verifier.h"
#include "support/diag.h"

namespace conair::fix {

using ir::BasicBlock;
using ir::Builtin;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Type;
using obs::pm::EpisodeReport;
using obs::pm::Verdict;

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::None:         return "none";
      case Strategy::WaitForValue: return "wait-for-value";
      case Strategy::LockGuard:    return "lock-guard";
      case Strategy::LockOrder:    return "lock-order";
    }
    return "none";
}

namespace {

/** Virtual ticks slept per wait-loop iteration.  Sleeping (rather than
 *  yielding) blocks the waiter outright, so the enabling writer is
 *  guaranteed CPU time even under priority schedulers (PCT); small
 *  enough that a clean-run waiter wakes promptly. */
constexpr int64_t kWaitSleepTicks = 4;

/** The function component of a site tag ("assert.binlog_append.93" ->
 *  "binlog_append"); empty when the tag has no such shape. */
std::string
tagFunction(const std::string &tag)
{
    size_t first = tag.find('.');
    size_t last = tag.rfind('.');
    if (first == std::string::npos || last == first)
        return "";
    return tag.substr(first + 1, last - first - 1);
}

/** All loads/stores of @p g in @p f, in program order. */
std::vector<Instruction *>
accessesOf(Function &f, const Global *g, bool loadsOnly = false)
{
    std::vector<Instruction *> out;
    for (auto &bb : f.blocks()) {
        for (auto &inst : bb->insts()) {
            if (!analysis::accessesGlobal(inst.get(), g))
                continue;
            if (loadsOnly && inst->opcode() != Opcode::Load)
                continue;
            out.push_back(inst.get());
        }
    }
    return out;
}

bool
storesTo(Function &f, const Global *g)
{
    for (auto &bb : f.blocks())
        for (auto &inst : bb->insts())
            if (inst->opcode() == Opcode::Store &&
                analysis::accessesGlobal(inst.get(), g))
                return true;
    return false;
}

/**
 * OrderViolation -> WaitForValue.
 *
 * The diagnosed pattern: a consumer read the racy global before the
 * enabling write published it.  The paper's order kernels all follow
 * the flag/pointer-publish idiom — the global starts at a known
 * initial value (0 / null) and is written exactly once to its
 * published state — so "the write happened" is observable as "the
 * global left its initial value".  Every dominating load of the
 * global in a non-publishing function is guarded:
 *
 *     check:  v  = load g
 *             eq = cmp v, <init>
 *             condbr eq, spin, tail
 *     spin:   call sleep(kWaitSleepTicks)
 *             br check
 *
 * Loads strictly dominated by an already-guarded load need no guard of
 * their own: once the first wait passes, the global has been published
 * and never returns to its initial value in this idiom.
 */
bool
applyWaitForValue(Module &m, const EpisodeReport &ep, FixPlan &plan)
{
    plan.strategy = Strategy::WaitForValue;
    if (ep.variable.empty()) {
        plan.error = "order-violation diagnosis names no racy global";
        return false;
    }
    Global *g = m.findGlobal(ep.variable);
    if (!g) {
        plan.error = "racy global '" + ep.variable +
                     "' not found in module";
        return false;
    }
    plan.variable = g->name();

    ir::Value *initConst = nullptr;
    Opcode eqOp = Opcode::ICmpEq;
    switch (g->elemType()) {
      case Type::I64:
        initConst = m.getInt(g->initInt().empty() ? 0 : g->initInt()[0]);
        break;
      case Type::Ptr:
        initConst = m.getNull();
        break;
      case Type::F64:
        initConst =
            m.getFloat(g->initFp().empty() ? 0.0 : g->initFp()[0]);
        eqOp = Opcode::FCmpEq;
        break;
      default:
        plan.error = "global '" + g->name() +
                     "' has no waitable element type";
        return false;
    }

    // Collect the guard sites up front: dominance is computed on the
    // unedited CFG (block splits invalidate DomTree, but Instruction
    // pointers stay valid across the list splices they perform).
    struct GuardSite
    {
        Function *fn;
        Instruction *load;
    };
    std::vector<GuardSite> sites;
    for (const auto &fnPtr : m.functions()) {
        Function &f = *fnPtr;
        if (f.blocks().empty() || storesTo(f, g))
            continue; // publishers wait for no one
        std::vector<Instruction *> loads =
            accessesOf(f, g, /*loadsOnly=*/true);
        if (loads.empty())
            continue;
        analysis::DomTree dom(f);
        for (Instruction *load : loads) {
            bool dominated = false;
            for (Instruction *other : loads) {
                if (other != load && dom.dominatesInst(other, load)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                sites.push_back({&f, load});
        }
    }
    if (sites.empty()) {
        plan.error = "no loads of '" + g->name() +
                     "' outside its publishers to guard";
        return false;
    }

    IRBuilder b(&m);
    for (const GuardSite &site : sites) {
        Function *f = site.fn;
        Instruction *load = site.load;
        BasicBlock *head = load->parent();
        std::string headName = head->name();

        BasicBlock *tail = analysis::splitBlockBefore(
            load, f->freshBlockName("fixwait.tail"));
        BasicBlock *check =
            f->insertBlockAfter(head, f->freshBlockName("fixwait.check"));
        BasicBlock *spin =
            f->insertBlockAfter(check, f->freshBlockName("fixwait.spin"));
        head->terminator()->setBlockOp(0, check);

        // The guard re-reads through the load's own address expression;
        // its operands are defined at or before the split point, so
        // `head` (which dominates check/spin/tail) still dominates
        // every use.
        b.setInsertAtEnd(check);
        Instruction *v = b.load(g->elemType(), load->operand(0));
        Instruction *eq = b.cmp(eqOp, v, initConst);
        b.condBr(eq, spin, tail);
        b.setInsertAtEnd(spin);
        b.callBuiltin(Builtin::Sleep, {m.getInt(kWaitSleepTicks)});
        b.br(check);

        plan.edits.push_back(
            {"wait-loop", f->name(),
             "guard load of '" + g->name() + "' in block '" + headName +
                 "' with a wait-until-published loop"});
    }
    return true;
}

/**
 * AtomicityViolation / LostUpdate -> LockGuard.
 *
 * Chooses the mutex with the highest *affinity* for the racy global —
 * the existing lock already held around the most of its accesses — so
 * the fix joins the program's own locking discipline instead of
 * fighting it; a fresh mutex is minted only when no access is ever
 * protected.  Functions whose racy accesses that mutex does not yet
 * cover get their span (or, when the span leaves a block or crosses a
 * call, their whole body) enclosed in lock/unlock.  Functions already
 * fully covered are skipped — re-acquiring a held non-reentrant mutex
 * is a self-deadlock, the classic over-eager-fix failure.
 */
bool
applyLockGuard(Module &m, const EpisodeReport &ep, FixPlan &plan)
{
    plan.strategy = Strategy::LockGuard;
    if (ep.variable.empty()) {
        plan.error = "atomicity diagnosis names no racy global";
        return false;
    }
    Global *g = m.findGlobal(ep.variable);
    if (!g) {
        plan.error = "racy global '" + ep.variable +
                     "' not found in module";
        return false;
    }
    plan.variable = g->name();

    LocksetAnalysis pre(m);

    // Affinity: how many accesses of g each mutex already guards.
    std::map<uint32_t, std::pair<const Global *, unsigned>> affinity;
    unsigned totalAccesses = 0;
    for (const auto &fnPtr : m.functions()) {
        for (Instruction *acc : accessesOf(*fnPtr, g)) {
            ++totalAccesses;
            for (const Global *mu : pre.locksAt(acc)) {
                auto &slot = affinity[mu->id()];
                slot.first = mu;
                ++slot.second;
            }
        }
    }
    if (totalAccesses == 0) {
        plan.error = "no accesses of '" + g->name() + "' in module";
        return false;
    }

    Global *mu = nullptr;
    unsigned best = 0;
    for (const auto &[id, slot] : affinity) {
        if (slot.second > best) { // map order breaks ties at lowest id
            best = slot.second;
            mu = m.findGlobal(slot.first->name());
        }
    }
    if (mu) {
        plan.usedExistingMutex = true;
    } else {
        mu = m.addGlobal(g->name() + "_fix_lock", Type::I64, 1,
                         /*is_mutex=*/true);
        plan.edits.push_back({"add-mutex", "",
                              "declare mutex '" + mu->name() + "'"});
    }
    plan.mutexName = mu->name();

    // Wrap targets: functions with an unprotected *store* (the update
    // side of the broken atomicity), plus the diagnosed failing
    // function when its reads are unprotected.  Read-only bystanders
    // stay untouched — wrapping them adds deadlock surface without
    // changing the diagnosed interleaving.
    std::string failingFn = tagFunction(ep.siteTag);
    struct WrapTarget
    {
        Function *fn;
        std::vector<Instruction *> unprotected;
    };
    std::vector<WrapTarget> wraps;
    for (const auto &fnPtr : m.functions()) {
        Function &f = *fnPtr;
        std::vector<Instruction *> accs = accessesOf(f, g);
        if (accs.empty())
            continue;
        std::vector<Instruction *> unprotected;
        bool unprotectedStore = false;
        for (Instruction *acc : accs) {
            if (pre.heldAt(acc, mu))
                continue;
            unprotected.push_back(acc);
            if (acc->opcode() == Opcode::Store)
                unprotectedStore = true;
        }
        if (unprotected.empty())
            continue; // fully covered: skip (self-deadlock guard)
        if (!unprotectedStore && f.name() != failingFn)
            continue;
        wraps.push_back({&f, std::move(unprotected)});
    }
    if (wraps.empty()) {
        plan.error = "every access of '" + g->name() +
                     "' is already guarded by '" + mu->name() + "'";
        return false;
    }

    IRBuilder b(&m);
    for (WrapTarget &w : wraps) {
        Function &f = *w.fn;

        // A function that manipulates the chosen mutex on some paths
        // cannot be extended mechanically without risking re-acquisition.
        for (auto &bb : f.blocks()) {
            for (auto &inst : bb->insts()) {
                if (lockOperand(inst.get()) == mu) {
                    plan.error = "function '" + f.name() +
                                 "' already manipulates '" + mu->name() +
                                 "'; cannot extend its critical "
                                 "section automatically";
                    return false;
                }
            }
        }

        Instruction *first = w.unprotected.front();
        Instruction *last = w.unprotected.back();
        BasicBlock *bb = first->parent();
        bool sameBlock = bb == last->parent();
        bool spanHasCall = false;
        if (sameBlock) {
            for (Instruction *i = first; i && i != last;
                 i = bb->next(i)) {
                if (i != first && i->opcode() == Opcode::Call) {
                    spanHasCall = true;
                    break;
                }
            }
        }

        ir::Value *muAddr = m.getGlobalAddr(mu);
        if (sameBlock && !spanHasCall) {
            b.setInsertBefore(first);
            b.callBuiltin(Builtin::MutexLock, {muAddr});
            b.setInsertBefore(bb->next(last));
            b.callBuiltin(Builtin::MutexUnlock, {muAddr});
            plan.edits.push_back(
                {"lock-span", f.name(),
                 "guard the '" + g->name() + "' span in block '" +
                     bb->name() + "' with '" + mu->name() + "'"});
        } else {
            // Whole-function wrap: lock after the entry allocas,
            // unlock before every return.
            BasicBlock *entry = f.entry();
            Instruction *firstReal = nullptr;
            for (auto &inst : entry->insts()) {
                if (inst->opcode() != Opcode::Alloca) {
                    firstReal = inst.get();
                    break;
                }
            }
            if (!firstReal) {
                plan.error = "function '" + f.name() +
                             "' has no lockable entry point";
                return false;
            }
            b.setInsertBefore(firstReal);
            b.callBuiltin(Builtin::MutexLock, {muAddr});
            unsigned rets = 0;
            for (auto &blk : f.blocks()) {
                Instruction *term = blk->terminator();
                if (term && term->opcode() == Opcode::Ret) {
                    b.setInsertBefore(term);
                    b.callBuiltin(Builtin::MutexUnlock, {muAddr});
                    ++rets;
                }
            }
            if (rets == 0) {
                plan.error = "function '" + f.name() +
                             "' never returns; cannot wrap it in '" +
                             mu->name() + "'";
                return false;
            }
            plan.edits.push_back(
                {"wrap-function", f.name(),
                 "guard all '" + g->name() + "' accesses by wrapping "
                 "the function in '" + mu->name() + "'"});
        }
    }
    return true;
}

/**
 * Deadlock -> LockOrder.
 *
 * The canonical acquisition order is ascending declaration order
 * (Global::id).  Every inverted nesting — lock(B) taken while A is
 * held with id(B) < id(A) — is normalized by *coarsening*: B is
 * acquired just before A and released just after A, and the original
 * inner lock/unlock pair is removed.  The critical section only ever
 * grows, so every access the old section protected stays protected.
 * Preconditions (bail otherwise): the function holds statically unique
 * lock/unlock sites for both mutexes, and the nesting is two deep.
 */
bool
applyLockOrder(Module &m, const EpisodeReport &ep, FixPlan &plan)
{
    plan.strategy = Strategy::LockOrder;
    plan.variable = ep.variable; // the diagnosed contended mutex
    LocksetAnalysis pre(m);

    // Group violations by (function, inner lock site); a site nested
    // under several held mutexes is deeper than this transform handles.
    struct Violation
    {
        Function *fn;
        Global *outer;
        Global *inner;
    };
    std::vector<Violation> violations;
    std::set<std::pair<const Function *, const Instruction *>> seen;
    for (const NestedPair &p : pre.nestedPairs()) {
        if (p.inner->id() >= p.outer->id())
            continue; // canonical
        if (!seen.insert({p.fn, p.lockInst}).second) {
            plan.error = "acquisition of '" + p.inner->name() + "' in '" +
                         p.fn->name() +
                         "' is nested under multiple locks";
            return false;
        }
        violations.push_back(
            {m.findFunction(p.fn->name()),
             m.findGlobal(p.outer->name()),
             m.findGlobal(p.inner->name())});
    }
    if (violations.empty()) {
        plan.error = "deadlock diagnosis, but every nested acquisition "
                     "is already in canonical order";
        return false;
    }

    auto uniqueLockOp = [&plan](Function &f, const Global *mu,
                                Builtin kind,
                                Instruction *&out) -> bool {
        out = nullptr;
        for (auto &bb : f.blocks()) {
            for (auto &inst : bb->insts()) {
                if (inst->opcode() != Opcode::Call || inst->callee() ||
                    inst->builtin() != kind ||
                    lockOperand(inst.get()) != mu)
                    continue;
                if (out) {
                    plan.error =
                        "'" + f.name() + "' has multiple " +
                        std::string(kind == Builtin::MutexLock
                                        ? "acquisitions"
                                        : "releases") +
                        " of '" + mu->name() +
                        "'; lock-order normalization needs unique "
                        "sites";
                    return false;
                }
                out = inst.get();
            }
        }
        if (!out) {
            plan.error = "'" + f.name() + "' has no " +
                         std::string(kind == Builtin::MutexLock
                                         ? "acquisition"
                                         : "release") +
                         " of '" + mu->name() + "'";
            return false;
        }
        return true;
    };

    IRBuilder b(&m);
    for (const Violation &v : violations) {
        Function &f = *v.fn;
        Instruction *outerLock = nullptr, *outerUnlock = nullptr;
        Instruction *innerLock = nullptr, *innerUnlock = nullptr;
        if (!uniqueLockOp(f, v.outer, Builtin::MutexLock, outerLock) ||
            !uniqueLockOp(f, v.outer, Builtin::MutexUnlock,
                          outerUnlock) ||
            !uniqueLockOp(f, v.inner, Builtin::MutexLock, innerLock) ||
            !uniqueLockOp(f, v.inner, Builtin::MutexUnlock,
                          innerUnlock))
            return false;

        ir::Value *innerAddr = m.getGlobalAddr(v.inner);
        b.setInsertBefore(outerLock);
        b.callBuiltin(Builtin::MutexLock, {innerAddr});
        Instruction *afterOuterUnlock =
            outerUnlock->parent()->next(outerUnlock);
        b.setInsertBefore(afterOuterUnlock);
        b.callBuiltin(Builtin::MutexUnlock, {innerAddr});
        innerLock->parent()->erase(innerLock);
        innerUnlock->parent()->erase(innerUnlock);

        plan.edits.push_back(
            {"reorder-locks", f.name(),
             "acquire '" + v.inner->name() + "' before '" +
                 v.outer->name() +
                 "' (canonical declaration order) and release it "
                 "after"});
    }
    return true;
}

/** Post-patch lock-discipline audit shared by the lock strategies:
 *  no self-nesting, no two-lock cycle, and (for lock-order fixes) no
 *  surviving inversion. */
bool
auditLockDiscipline(const Module &m, bool requireCanonical,
                    FixPlan &plan)
{
    LocksetAnalysis post(m);
    std::set<std::pair<uint32_t, uint32_t>> ordered;
    for (const NestedPair &p : post.nestedPairs()) {
        if (p.outer == p.inner) {
            plan.error = "patch would re-acquire '" + p.outer->name() +
                         "' while held in '" + p.fn->name() + "'";
            return false;
        }
        if (requireCanonical && p.inner->id() < p.outer->id()) {
            plan.error = "patch leaves non-canonical nesting '" +
                         p.outer->name() + "' -> '" + p.inner->name() +
                         "' in '" + p.fn->name() + "'";
            return false;
        }
        ordered.insert({p.outer->id(), p.inner->id()});
    }
    for (const auto &[a, bId] : ordered) {
        if (ordered.count({bId, a})) {
            plan.error = "patch would create a lock-order cycle";
            return false;
        }
    }
    return true;
}

} // namespace

FixPlan
synthesizeFix(const Module &original,
              const obs::pm::RecoveryReport &report)
{
    FixPlan plan;
    plan.program = report.program;
    const EpisodeReport *ep = report.primary();
    if (!ep) {
        plan.error = "diagnosis carries no episode with a verdict";
        return plan;
    }
    plan.verdict = ep->verdict;

    std::unique_ptr<Module> patched = ir::cloneModule(original);
    bool applied = false;
    bool audit = false;
    switch (ep->verdict) {
      case Verdict::OrderViolation:
        applied = applyWaitForValue(*patched, *ep, plan);
        break;
      case Verdict::AtomicityViolation:
      case Verdict::LostUpdate:
        applied = applyLockGuard(*patched, *ep, plan);
        audit = true;
        break;
      case Verdict::Deadlock:
        applied = applyLockOrder(*patched, *ep, plan);
        audit = true;
        break;
      case Verdict::Unknown:
        plan.error = "verdict 'unknown' has no fix strategy";
        return plan;
    }
    if (!applied)
        return plan;

    if (audit &&
        !auditLockDiscipline(
            *patched, ep->verdict == Verdict::Deadlock, plan))
        return plan;

    DiagEngine diags;
    if (!ir::verifyModule(*patched, diags)) {
        plan.error = "patched module failed verification: " +
                     (diags.diags().empty() ? std::string("(no detail)")
                                            : diags.diags()[0].message);
        return plan;
    }

    plan.ok = true;
    plan.patched = std::move(patched);
    return plan;
}

} // namespace conair::fix
