#include "fix/report.h"

#include <cstdio>

#include "support/json.h"

namespace conair::fix {

namespace {

std::string
fmtOverhead(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

std::string
renderPatchText(const FixPlan &plan, const ValidationResult *val)
{
    std::string out;
    out += "=== fix synthesis: " + plan.program + " ===\n";
    out += "verdict:   " + std::string(verdictName(plan.verdict)) + "\n";
    out += "strategy:  " + std::string(strategyName(plan.strategy)) +
           "\n";
    if (!plan.variable.empty())
        out += "variable:  " + plan.variable + "\n";
    if (!plan.mutexName.empty())
        out += "mutex:     " + plan.mutexName +
               (plan.usedExistingMutex ? " (existing)" : " (fresh)") +
               "\n";
    if (!plan.ok) {
        out += "result:    FAILED: " + plan.error + "\n";
        return out;
    }
    out += "result:    patch synthesized (" +
           std::to_string(plan.edits.size()) + " edit" +
           (plan.edits.size() == 1 ? "" : "s") + ")\n";
    for (const PatchEdit &e : plan.edits) {
        out += "  [" + e.kind + "]";
        if (!e.function.empty())
            out += " " + e.function + ":";
        out += " " + e.detail + "\n";
    }
    if (val) {
        out += "--- validation ---\n";
        if (val->replayChecked)
            out += std::string("minimized replay:  ") +
                   (val->replayFailureGone ? "failure gone"
                                           : "STILL FAILING") +
                   " (" + val->replayDetail + ")\n";
        if (val->campaignRan) {
            out += "campaign:          " +
                   std::to_string(val->schedules) + " schedules, " +
                   std::to_string(val->failing) + " failing, " +
                   std::to_string(val->deadlocks) + " deadlocked, " +
                   std::to_string(val->divergences) + " divergent, " +
                   std::to_string(val->inconclusive) +
                   " inconclusive\n";
        }
        if (val->overheadChecked)
            out += "clean overhead:    " + fmtOverhead(val->overhead) +
                   "x (" + (val->overheadOk ? "ok" : "OVER BOUND") +
                   ")\n";
        out += std::string("verdict:           ") +
               (val->ok() ? "VALIDATED" : "NOT VALIDATED") + "\n";
        if (!val->ok() && !val->error.empty())
            out += "reason:            " + val->error + "\n";
    }
    return out;
}

void
writePatchJson(JsonWriter &w, const FixPlan &plan,
               const ValidationResult *val)
{
    w.beginObject();
    w.key("program").value(plan.program);
    w.key("ok").value(plan.ok);
    w.key("verdict").value(verdictName(plan.verdict));
    w.key("strategy").value(strategyName(plan.strategy));
    w.key("variable").value(plan.variable);
    w.key("mutex").value(plan.mutexName);
    w.key("usedExistingMutex").value(plan.usedExistingMutex);
    w.key("error").value(plan.error);
    w.key("edits").beginArray();
    for (const PatchEdit &e : plan.edits) {
        w.beginObject();
        w.key("kind").value(e.kind);
        w.key("function").value(e.function);
        w.key("detail").value(e.detail);
        w.endObject();
    }
    w.endArray();
    if (val) {
        w.key("validation").beginObject();
        w.key("ok").value(val->ok());
        w.key("replayChecked").value(val->replayChecked);
        w.key("replayFailureGone").value(val->replayFailureGone);
        w.key("replayDetail").value(val->replayDetail);
        w.key("campaignRan").value(val->campaignRan);
        w.key("schedules").value(val->schedules);
        w.key("failing").value(val->failing);
        w.key("deadlocks").value(val->deadlocks);
        w.key("divergences").value(val->divergences);
        w.key("inconclusive").value(val->inconclusive);
        w.key("overhead").value(val->overhead, "%.4f");
        w.key("overheadOk").value(val->overheadOk);
        w.key("error").value(val->error);
        w.endObject();
    }
    w.endObject();
}

std::string
patchToJson(const FixPlan &plan, const ValidationResult *val,
            int indent)
{
    JsonWriter w(indent);
    writePatchJson(w, plan, val);
    return w.str();
}

} // namespace conair::fix
