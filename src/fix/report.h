/**
 * @file
 * Patch reports: the human-readable and JSON renderings of a
 * synthesized fix and (optionally) its validation evidence.  Both
 * renderings are deterministic — the golden test pins the ZSNES report
 * byte for byte.
 */
#pragma once

#include <string>

#include "fix/fix.h"
#include "fix/validate.h"

namespace conair {
class JsonWriter;
}

namespace conair::fix {

/** Human-readable patch report (strategy, rationale, edit list, and —
 *  when @p val is non-null — the validation evidence). */
std::string renderPatchText(const FixPlan &plan,
                            const ValidationResult *val = nullptr);

/** Serialises the plan (+ optional validation) into an open writer
 *  position as one JSON object; the caller owns the document. */
void writePatchJson(JsonWriter &w, const FixPlan &plan,
                    const ValidationResult *val = nullptr);

/** A standalone pretty-printed JSON document. */
std::string patchToJson(const FixPlan &plan,
                        const ValidationResult *val = nullptr,
                        int indent = 2);

} // namespace conair::fix
