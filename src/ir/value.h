/**
 * @file
 * The MiniIR value hierarchy: constants, arguments, and instruction
 * results.  Values carry explicit use lists so transformations can
 * rewrite operands safely (RAUW).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace conair::ir {

class Instruction;
class Function;
class Global;

/** Discriminates the concrete Value subclass. */
enum class ValueKind : uint8_t {
    ConstInt,
    ConstFloat,
    ConstNull,
    ConstStr,
    GlobalAddr,
    FuncAddr,
    Argument,
    Instruction,
};

/** One operand slot of an instruction referring to this value. */
struct Use
{
    Instruction *user;
    unsigned index;

    bool
    operator==(const Use &o) const
    {
        return user == o.user && index == o.index;
    }
};

/**
 * Base class of everything an instruction can take as an operand.
 *
 * Ownership: constants live in the Module's pool, arguments in their
 * Function, instruction results are the instructions themselves.
 */
class Value
{
  public:
    Value(ValueKind kind, Type type) : kind_(kind), type_(type) {}
    virtual ~Value() = default;

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind kind() const { return kind_; }
    Type type() const { return type_; }

    const std::vector<Use> &uses() const { return uses_; }
    bool hasUses() const { return !uses_.empty(); }

    /** Rewrites every use of this value to use @p repl instead. */
    void replaceAllUsesWith(Value *repl);

    bool isConstant() const;

    /// @{ Use-list bookkeeping; called by Instruction only.
    void addUse(Instruction *user, unsigned index);
    void removeUse(Instruction *user, unsigned index);
    /// @}

  private:
    ValueKind kind_;
    Type type_;
    std::vector<Use> uses_;
};

/** A 64-bit integer constant (also used for i1: 0/1). */
class ConstInt : public Value
{
  public:
    ConstInt(int64_t v, Type t = Type::I64) : Value(ValueKind::ConstInt, t),
        value_(v)
    {}

    int64_t value() const { return value_; }

  private:
    int64_t value_;
};

/** A double constant. */
class ConstFloat : public Value
{
  public:
    explicit ConstFloat(double v) : Value(ValueKind::ConstFloat, Type::F64),
        value_(v)
    {}

    double value() const { return value_; }

  private:
    double value_;
};

/** The null pointer constant. */
class ConstNull : public Value
{
  public:
    ConstNull() : Value(ValueKind::ConstNull, Type::Ptr) {}
};

/** A reference to an interned string in the module's string table. */
class ConstStr : public Value
{
  public:
    explicit ConstStr(uint32_t id) : Value(ValueKind::ConstStr, Type::Ptr),
        id_(id)
    {}

    uint32_t id() const { return id_; }

  private:
    uint32_t id_;
};

/** The address of a module-level global variable. */
class GlobalAddr : public Value
{
  public:
    explicit GlobalAddr(Global *g) : Value(ValueKind::GlobalAddr, Type::Ptr),
        global_(g)
    {}

    Global *global() const { return global_; }

  private:
    Global *global_;
};

/** A first-class reference to a function (thread entry points). */
class FuncAddr : public Value
{
  public:
    explicit FuncAddr(Function *f) : Value(ValueKind::FuncAddr, Type::Ptr),
        func_(f)
    {}

    Function *function() const { return func_; }

  private:
    Function *func_;
};

/** A formal parameter of a function. */
class Argument : public Value
{
  public:
    Argument(Type t, std::string name, unsigned index, Function *parent)
        : Value(ValueKind::Argument, t), name_(std::move(name)),
          index_(index), parent_(parent)
    {}

    const std::string &name() const { return name_; }
    unsigned index() const { return index_; }
    Function *parent() const { return parent_; }

  private:
    std::string name_;
    unsigned index_;
    Function *parent_;
};

} // namespace conair::ir
