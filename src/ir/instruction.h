/**
 * @file
 * MiniIR instructions.
 *
 * A single concrete Instruction class carries an opcode plus per-opcode
 * payload fields.  This keeps IR surgery (the ConAir transform) simple
 * and the interpreter dispatch flat.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/builtins.h"
#include "ir/value.h"
#include "support/diag.h"

namespace conair::ir {

class BasicBlock;

/** Every MiniIR operation. */
enum class Opcode : uint8_t {
    // Memory.
    Alloca, ///< reserve allocaSize() cells in the current frame -> ptr
    Load,   ///< (ptr) -> value
    Store,  ///< (value, ptr) -> void

    // Integer arithmetic (i64).
    Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, Shr,

    // Floating-point arithmetic (f64).
    FAdd, FSub, FMul, FDiv,

    // Comparisons -> i1.  ICmp also accepts two ptr operands (Eq/Ne).
    ICmpEq, ICmpNe, ICmpSlt, ICmpSle, ICmpSgt, ICmpSge,
    FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,

    // Conversions.
    SiToFp, ///< (i64) -> f64
    FpToSi, ///< (f64) -> i64 (truncating)
    Zext,   ///< (i1) -> i64 (0 or 1)

    // Pointer arithmetic: (ptr, i64 offset-in-cells) -> ptr.
    PtrAdd,

    // Control flow.
    Phi,    ///< SSA merge; incomingBlock(i) pairs with operand(i)
    Br,     ///< unconditional branch to target(0)
    CondBr, ///< (i1): branch to target(0) when true, target(1) when false
    Ret,    ///< optional operand
    Unreachable,

    // Calls (user functions and builtins).
    Call,

    // Scheduler hint: a no-op that the VM's interleaving controller keys
    // on.  Idempotency-neutral by design (see DESIGN.md §2).
    SchedHint,
};

/** Printable opcode mnemonic. */
const char *opcodeName(Opcode op);

/** Looks up an opcode by mnemonic; returns false when unknown. */
bool opcodeFromName(const std::string &s, Opcode &out);

/**
 * One MiniIR instruction.  Owned by its BasicBlock; usable as an operand
 * of other instructions when it produces a value (type() != Void).
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type type)
        : Value(ValueKind::Instruction, type), op_(op)
    {}

    ~Instruction() override { dropAllOperands(); }

    Opcode opcode() const { return op_; }
    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    /// @{ Operand access.
    unsigned numOperands() const { return operands_.size(); }
    Value *operand(unsigned i) const { return operands_[i]; }
    void setOperand(unsigned i, Value *v);
    void addOperand(Value *v);
    void dropAllOperands();
    /// @}

    /// @{ Alloca payload.
    int64_t allocaSize() const { return allocaSize_; }
    void setAllocaSize(int64_t n) { allocaSize_ = n; }
    /// @}

    /// @{ Call payload: either a user function or a builtin.
    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }
    Builtin builtin() const { return builtin_; }
    void setBuiltin(Builtin b) { builtin_ = b; }
    /// @}

    /// @{ Block operands (branch targets / phi incoming blocks).
    unsigned numBlockOps() const { return blockOps_.size(); }
    BasicBlock *blockOp(unsigned i) const { return blockOps_[i]; }
    void setBlockOp(unsigned i, BasicBlock *bb) { blockOps_[i] = bb; }
    void addBlockOp(BasicBlock *bb) { blockOps_.push_back(bb); }
    /// @}

    /// @{ Phi helpers: operand(i) flows in from incomingBlock(i).
    BasicBlock *incomingBlock(unsigned i) const { return blockOps_[i]; }
    void addIncoming(Value *v, BasicBlock *bb);
    /** Removes the incoming edge from @p bb (if any). */
    void removeIncoming(BasicBlock *bb);
    /// @}

    /// @{ SchedHint payload.
    uint64_t hintId() const { return hintId_; }
    void setHintId(uint64_t id) { hintId_ = id; }
    /// @}

    /** Source location (from the MiniC front-end), for diagnostics. */
    SrcLoc loc() const { return loc_; }
    void setLoc(SrcLoc loc) { loc_ = loc; }

    /** Free-form annotation; used to name fix-mode failure sites. */
    const std::string &tag() const { return tag_; }
    void setTag(std::string t) { tag_ = std::move(t); }

    bool isTerminator() const;
    bool
    producesValue() const
    {
        return type() != Type::Void;
    }

    /** Successor blocks when this is a terminator. */
    std::vector<BasicBlock *> successors() const;

  private:
    Opcode op_;
    std::vector<Value *> operands_;
    BasicBlock *parent_ = nullptr;

    int64_t allocaSize_ = 1;
    Function *callee_ = nullptr;
    Builtin builtin_ = Builtin::None;
    std::vector<BasicBlock *> blockOps_;
    uint64_t hintId_ = 0;
    SrcLoc loc_;
    std::string tag_;
};

} // namespace conair::ir
