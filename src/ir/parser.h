/**
 * @file
 * Parses the textual MiniIR form produced by ir/printer.h back into a
 * Module.  Used by tests, golden files, and the example tools.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"
#include "support/diag.h"

namespace conair::ir {

/**
 * Parses @p text into a fresh module.  Returns nullptr and fills
 * @p diags on error.
 */
std::unique_ptr<Module> parseModule(const std::string &text,
                                    DiagEngine &diags);

} // namespace conair::ir
