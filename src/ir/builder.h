/**
 * @file
 * IRBuilder: a cursor-based instruction factory used by the MiniC code
 * generator and the ConAir transformation pass.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/module.h"

namespace conair::ir {

/**
 * Creates instructions at an insertion point.  The point is either "end
 * of block" (append mode) or "before instruction X".
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Module *m) : module_(m) {}

    Module *module() const { return module_; }

    /// @{ Insertion point control.
    void
    setInsertAtEnd(BasicBlock *bb)
    {
        block_ = bb;
        before_ = nullptr;
    }

    void
    setInsertBefore(Instruction *inst)
    {
        block_ = inst->parent();
        before_ = inst;
    }

    BasicBlock *insertBlock() const { return block_; }
    /// @}

    /** Source location attached to every subsequently created inst. */
    void setLoc(SrcLoc loc) { loc_ = loc; }

    /// @{ Memory.
    Instruction *alloca_(int64_t cells = 1);
    Instruction *load(Type t, Value *ptr);
    Instruction *store(Value *v, Value *ptr);
    Instruction *ptrAdd(Value *ptr, Value *offset);
    /// @}

    /// @{ Arithmetic / comparison / conversion.
    Instruction *binop(Opcode op, Value *lhs, Value *rhs);
    Instruction *cmp(Opcode op, Value *lhs, Value *rhs);
    Instruction *siToFp(Value *v);
    Instruction *fpToSi(Value *v);
    Instruction *zext(Value *v);
    /// @}

    /// @{ Control flow.
    Instruction *br(BasicBlock *target);
    Instruction *condBr(Value *cond, BasicBlock *t, BasicBlock *f);
    Instruction *ret(Value *v = nullptr);
    Instruction *unreachable();
    Instruction *phi(Type t);
    /// @}

    /// @{ Calls.
    Instruction *call(Function *callee, const std::vector<Value *> &args);
    Instruction *callBuiltin(Builtin b, const std::vector<Value *> &args);
    /// @}

    Instruction *schedHint(uint64_t id);

  private:
    Instruction *emit(std::unique_ptr<Instruction> inst);

    Module *module_;
    BasicBlock *block_ = nullptr;
    Instruction *before_ = nullptr;
    SrcLoc loc_;
};

} // namespace conair::ir
