/**
 * @file
 * Deep module cloning.  Transforms that must not touch the original
 * program (fix synthesis patches a copy and leaves the diagnosed build
 * intact) clone through the printer/parser round trip, which the
 * property tests pin as lossless — globals, initialisers, tags, block
 * structure, and instruction payloads all survive.
 */
#pragma once

#include <memory>

#include "ir/module.h"

namespace conair::ir {

/** Deep-copies @p m.  fatal() if the printed form fails to re-parse
 *  (an IR printer/parser bug, not an input error). */
std::unique_ptr<Module> cloneModule(const Module &m);

} // namespace conair::ir
