/**
 * @file
 * MiniIR type system.
 *
 * MiniIR is deliberately small: 64-bit integers, doubles, booleans
 * (compare results), and fat pointers.  Memory is cell-addressed (one
 * cell holds one value), so there is no sizeof/alignment machinery.
 */
#pragma once

#include <cstdint>
#include <string>

namespace conair::ir {

/** The scalar types a MiniIR value can have. */
enum class Type : uint8_t {
    Void, ///< no value (stores, calls to void functions, terminators)
    I1,   ///< boolean, produced by comparisons
    I64,  ///< 64-bit signed integer
    F64,  ///< IEEE double
    Ptr,  ///< fat pointer into global / heap / stack memory
};

/** Printable spelling of a type ("void", "i1", ...). */
const char *typeName(Type t);

/** Parses a type name back; returns false if @p s is not a type. */
bool typeFromName(const std::string &s, Type &out);

} // namespace conair::ir
