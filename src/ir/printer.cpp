#include "ir/printer.h"

#include <unordered_map>

#include "support/diag.h"
#include "support/str.h"

namespace conair::ir {

namespace {

/** Assigns printable names to values within one function. */
class NameMap
{
  public:
    explicit NameMap(const Function &f)
    {
        for (unsigned i = 0; i < f.numArgs(); ++i)
            names_[f.arg(i)] = "%" + f.arg(i)->name();
        unsigned next = 0;
        for (const auto &bb : f.blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->producesValue())
                    names_[inst.get()] = strfmt("%%%u", next++);
            }
        }
    }

    std::string
    ref(const Module &m, const Value *v) const
    {
        switch (v->kind()) {
          case ValueKind::ConstInt: {
            auto *c = static_cast<const ConstInt *>(v);
            if (c->type() == Type::I1)
                return c->value() ? "true" : "false";
            return strfmt("%lld", (long long)c->value());
          }
          case ValueKind::ConstFloat:
            return fpToStr(static_cast<const ConstFloat *>(v)->value());
          case ValueKind::ConstNull:
            return "null";
          case ValueKind::ConstStr:
            return "\"" +
                   escape(m.strAt(static_cast<const ConstStr *>(v)->id())) +
                   "\"";
          case ValueKind::GlobalAddr:
            return "@" + static_cast<const GlobalAddr *>(v)->global()->name();
          case ValueKind::FuncAddr:
            return "@" +
                   static_cast<const FuncAddr *>(v)->function()->name();
          case ValueKind::Argument:
          case ValueKind::Instruction: {
            auto it = names_.find(v);
            if (it == names_.end())
                return "%<unnamed>";
            return it->second;
          }
        }
        return "?";
    }

    std::string
    def(const Value *v) const
    {
        auto it = names_.find(v);
        return it == names_.end() ? "%<unnamed>" : it->second;
    }

  private:
    std::unordered_map<const Value *, std::string> names_;
};

std::string
printInst(const Module &m, const NameMap &names, const Instruction &inst)
{
    std::string s;
    if (inst.producesValue())
        s += names.def(&inst) + " = ";

    auto op = [&](unsigned i) { return names.ref(m, inst.operand(i)); };

    switch (inst.opcode()) {
      case Opcode::Alloca:
        s += strfmt("alloca %lld", (long long)inst.allocaSize());
        break;
      case Opcode::Load:
        s += strfmt("load %s, %s", typeName(inst.type()), op(0).c_str());
        break;
      case Opcode::Store:
        s += strfmt("store %s, %s", op(0).c_str(), op(1).c_str());
        break;
      case Opcode::Phi: {
        s += strfmt("phi %s", typeName(inst.type()));
        for (unsigned i = 0; i < inst.numOperands(); ++i) {
            s += i ? ", " : " ";
            s += strfmt("[%s, %s]", op(i).c_str(),
                        inst.incomingBlock(i)->name().c_str());
        }
        break;
      }
      case Opcode::Br:
        s += "br " + inst.blockOp(0)->name();
        break;
      case Opcode::CondBr:
        s += strfmt("condbr %s, %s, %s", op(0).c_str(),
                    inst.blockOp(0)->name().c_str(),
                    inst.blockOp(1)->name().c_str());
        break;
      case Opcode::Ret:
        s += "ret";
        if (inst.numOperands())
            s += " " + op(0);
        break;
      case Opcode::Unreachable:
        s += "unreachable";
        break;
      case Opcode::Call: {
        std::string callee =
            inst.callee() ? "@" + inst.callee()->name()
                          : std::string("$") + builtinName(inst.builtin());
        std::vector<std::string> args;
        for (unsigned i = 0; i < inst.numOperands(); ++i)
            args.push_back(op(i));
        s += strfmt("call %s(%s)", callee.c_str(),
                    join(args, ", ").c_str());
        break;
      }
      case Opcode::SchedHint:
        s += strfmt("sched_hint %llu", (unsigned long long)inst.hintId());
        break;
      default: {
        // Uniform binary/unary form: "<op> a, b".
        std::vector<std::string> args;
        for (unsigned i = 0; i < inst.numOperands(); ++i)
            args.push_back(op(i));
        s += strfmt("%s %s", opcodeName(inst.opcode()),
                    join(args, ", ").c_str());
        break;
      }
    }
    if (!inst.tag().empty())
        s += " #\"" + escape(inst.tag()) + "\"";
    return s;
}

std::string
printFunc(const Module &m, const Function &f)
{
    NameMap names(f);
    std::vector<std::string> args;
    for (unsigned i = 0; i < f.numArgs(); ++i) {
        args.push_back(strfmt("%s %%%s", typeName(f.arg(i)->type()),
                              f.arg(i)->name().c_str()));
    }
    std::string s = strfmt("func @%s(%s) -> %s {\n", f.name().c_str(),
                           join(args, ", ").c_str(),
                           typeName(f.returnType()));
    for (const auto &bb : f.blocks()) {
        s += bb->name() + ":\n";
        for (const auto &inst : bb->insts())
            s += "    " + printInst(m, names, *inst) + "\n";
    }
    s += "}\n";
    return s;
}

} // namespace

std::string
printInstruction(const Instruction &inst)
{
    const Function *f = inst.parent()->parent();
    NameMap names(*f);
    return printInst(*f->parent(), names, inst);
}

std::string
printFunction(const Function &f)
{
    return printFunc(*f.parent(), f);
}

std::string
printModule(const Module &m)
{
    std::string s = strfmt("module \"%s\"\n\n", m.name().c_str());
    for (const auto &g : m.globals()) {
        if (g->isMutex()) {
            s += strfmt("mutex @%s\n", g->name().c_str());
            continue;
        }
        s += strfmt("global @%s : %s[%lld]", g->name().c_str(),
                    typeName(g->elemType()), (long long)g->size());
        if (!g->initInt().empty() || !g->initFp().empty()) {
            std::vector<std::string> vals;
            if (g->elemType() == Type::F64) {
                for (double v : g->initFp())
                    vals.push_back(fpToStr(v));
            } else {
                for (int64_t v : g->initInt())
                    vals.push_back(strfmt("%lld", (long long)v));
            }
            s += " = [" + join(vals, ", ") + "]";
        }
        s += "\n";
    }
    if (!m.globals().empty())
        s += "\n";
    for (const auto &f : m.functions())
        s += printFunc(m, *f) + "\n";
    return s;
}

} // namespace conair::ir
