#include "ir/verifier.h"

#include <set>
#include <unordered_set>

#include "ir/printer.h"
#include "support/str.h"

namespace conair::ir {

namespace {

class Verifier
{
  public:
    Verifier(const Module &m, DiagEngine &diags) : m_(m), diags_(diags) {}

    bool
    runModule()
    {
        std::unordered_set<std::string> names;
        for (const auto &f : m_.functions()) {
            if (!names.insert(f->name()).second)
                error(nullptr, "duplicate function name @" + f->name());
            runFunction(*f);
        }
        for (const auto &g : m_.globals()) {
            if (g->size() <= 0)
                error(nullptr, "global @" + g->name() +
                                   " has non-positive size");
        }
        return ok_;
    }

    bool
    runFunction(const Function &f)
    {
        func_ = &f;
        if (f.blocks().empty()) {
            error(nullptr, "function @" + f.name() + " has no blocks");
            return ok_;
        }
        // Collect all values defined in this function for scope checks.
        defined_.clear();
        for (unsigned i = 0; i < f.numArgs(); ++i)
            defined_.insert(f.arg(i));
        for (const auto &bb : f.blocks())
            for (const auto &inst : bb->insts())
                if (inst->producesValue())
                    defined_.insert(inst.get());

        auto preds = f.predecessorList();
        auto preds_of = [&](const BasicBlock *bb) {
            for (auto &[block, p] : preds)
                if (block == bb)
                    return p;
            return std::vector<BasicBlock *>{};
        };

        std::unordered_set<const BasicBlock *> blocks;
        for (const auto &bb : f.blocks())
            blocks.insert(bb.get());

        for (const auto &bb : f.blocks()) {
            if (bb->empty()) {
                error(nullptr, "empty block " + bb->name());
                continue;
            }
            if (!bb->terminator())
                error(bb->back(), "block " + bb->name() +
                                      " does not end in a terminator");
            bool seen_non_phi = false;
            for (const auto &inst : bb->insts()) {
                if (inst->parent() != bb.get())
                    error(inst.get(), "instruction parent link broken");
                if (inst->isTerminator() && inst.get() != bb->back())
                    error(inst.get(), "terminator in the middle of block");
                if (inst->opcode() == Opcode::Phi) {
                    if (seen_non_phi)
                        error(inst.get(), "phi after non-phi instruction");
                } else {
                    seen_non_phi = true;
                }
                checkInst(*inst, preds_of(bb.get()), blocks);
            }
        }
        return ok_;
    }

  private:
    void
    error(const Instruction *inst, const std::string &msg)
    {
        ok_ = false;
        std::string where = func_ ? "@" + func_->name() : "<module>";
        std::string text = where + ": " + msg;
        if (inst)
            text += " [" + printInstruction(*inst) + "]";
        diags_.error(inst ? inst->loc() : SrcLoc{}, text);
    }

    void
    expectType(const Instruction &inst, unsigned i, Type t)
    {
        if (i >= inst.numOperands()) {
            error(&inst, strfmt("missing operand %u", i));
            return;
        }
        if (inst.operand(i)->type() != t) {
            error(&inst, strfmt("operand %u has type %s, expected %s", i,
                                typeName(inst.operand(i)->type()),
                                typeName(t)));
        }
    }

    void
    expectOperands(const Instruction &inst, unsigned n)
    {
        if (inst.numOperands() != n)
            error(&inst, strfmt("expected %u operands, found %u", n,
                                inst.numOperands()));
    }

    void
    checkInst(const Instruction &inst,
              const std::vector<BasicBlock *> &preds,
              const std::unordered_set<const BasicBlock *> &blocks)
    {
        // Scope check: instruction/argument operands must be defined in
        // this function (full dominance is checked at the analysis layer).
        for (unsigned i = 0; i < inst.numOperands(); ++i) {
            const Value *v = inst.operand(i);
            if (!v) {
                error(&inst, strfmt("null operand %u", i));
                continue;
            }
            if ((v->kind() == ValueKind::Instruction ||
                 v->kind() == ValueKind::Argument) &&
                !defined_.count(v)) {
                error(&inst, strfmt("operand %u defined outside function",
                                    i));
            }
        }
        for (unsigned i = 0; i < inst.numBlockOps(); ++i) {
            if (!inst.blockOp(i) || !blocks.count(inst.blockOp(i)))
                error(&inst, "branch/phi references foreign block");
        }

        switch (inst.opcode()) {
          case Opcode::Alloca:
            expectOperands(inst, 0);
            if (inst.allocaSize() <= 0)
                error(&inst, "alloca with non-positive size");
            break;
          case Opcode::Load:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::Ptr);
            if (inst.type() == Type::Void)
                error(&inst, "load must produce a value");
            break;
          case Opcode::Store:
            expectOperands(inst, 2);
            expectType(inst, 1, Type::Ptr);
            if (inst.operand(0) && inst.operand(0)->type() == Type::Void)
                error(&inst, "cannot store a void value");
            break;
          case Opcode::PtrAdd:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::Ptr);
            expectType(inst, 1, Type::I64);
            break;
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::SDiv: case Opcode::SRem: case Opcode::And:
          case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
          case Opcode::Shr:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::I64);
            expectType(inst, 1, Type::I64);
            break;
          case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
          case Opcode::FDiv:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::F64);
            expectType(inst, 1, Type::F64);
            break;
          case Opcode::ICmpEq: case Opcode::ICmpNe: {
            expectOperands(inst, 2);
            if (inst.numOperands() == 2) {
                Type a = inst.operand(0)->type();
                Type b = inst.operand(1)->type();
                bool ints = a == Type::I64 && b == Type::I64;
                bool bools = a == Type::I1 && b == Type::I1;
                bool ptrs = a == Type::Ptr && b == Type::Ptr;
                if (!ints && !ptrs && !bools)
                    error(&inst, "icmp eq/ne needs two i64, i1 or two ptr "
                                 "operands");
            }
            break;
          }
          case Opcode::ICmpSlt: case Opcode::ICmpSle:
          case Opcode::ICmpSgt: case Opcode::ICmpSge:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::I64);
            expectType(inst, 1, Type::I64);
            break;
          case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
          case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::F64);
            expectType(inst, 1, Type::F64);
            break;
          case Opcode::SiToFp:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::I64);
            break;
          case Opcode::FpToSi:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::F64);
            break;
          case Opcode::Zext:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::I1);
            break;
          case Opcode::Phi: {
            if (inst.numOperands() != inst.numBlockOps())
                error(&inst, "phi operand/block count mismatch");
            // Incoming blocks must exactly match the predecessors.
            std::set<const BasicBlock *> incoming;
            for (unsigned i = 0; i < inst.numBlockOps(); ++i)
                if (!incoming.insert(inst.blockOp(i)).second)
                    error(&inst, "duplicate phi incoming block");
            std::set<const BasicBlock *> expect(preds.begin(), preds.end());
            if (incoming != expect)
                error(&inst, "phi incoming blocks do not match "
                             "predecessors");
            for (unsigned i = 0; i < inst.numOperands(); ++i) {
                if (inst.operand(i) &&
                    inst.operand(i)->type() != inst.type())
                    error(&inst, "phi incoming value type mismatch");
            }
            break;
          }
          case Opcode::Br:
            if (inst.numBlockOps() != 1)
                error(&inst, "br needs one target");
            break;
          case Opcode::CondBr:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::I1);
            if (inst.numBlockOps() != 2)
                error(&inst, "condbr needs two targets");
            break;
          case Opcode::Ret: {
            Type want = func_->returnType();
            if (want == Type::Void) {
                expectOperands(inst, 0);
            } else {
                expectOperands(inst, 1);
                if (inst.numOperands() == 1)
                    expectType(inst, 0, want);
            }
            break;
          }
          case Opcode::Unreachable:
          case Opcode::SchedHint:
            expectOperands(inst, 0);
            break;
          case Opcode::Call:
            checkCall(inst);
            break;
        }
    }

    void
    checkCall(const Instruction &inst)
    {
        if (inst.callee()) {
            const Function *callee = inst.callee();
            if (inst.numOperands() != callee->numArgs()) {
                error(&inst, strfmt("call passes %u args, callee takes %u",
                                    inst.numOperands(), callee->numArgs()));
                return;
            }
            for (unsigned i = 0; i < inst.numOperands(); ++i)
                expectType(inst, i, callee->arg(i)->type());
            if (inst.type() != callee->returnType())
                error(&inst, "call result type mismatch");
            return;
        }
        Builtin b = inst.builtin();
        if (b == Builtin::None) {
            error(&inst, "call with neither callee nor builtin");
            return;
        }
        switch (b) {
          case Builtin::ThreadCreate:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::Ptr);
            expectType(inst, 1, Type::I64);
            break;
          case Builtin::ThreadJoin:
          case Builtin::Malloc:
          case Builtin::Sleep:
          case Builtin::RandInt:
          case Builtin::PrintI64:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::I64);
            break;
          case Builtin::MutexLock:
          case Builtin::MutexUnlock:
          case Builtin::Free:
          case Builtin::CaNoteAlloc:
          case Builtin::CaNoteLock:
          case Builtin::CaPtrCheck:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::Ptr);
            break;
          case Builtin::MutexTimedLock:
            expectOperands(inst, 2);
            expectType(inst, 0, Type::Ptr);
            expectType(inst, 1, Type::I64);
            break;
          case Builtin::PrintF64:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::F64);
            break;
          case Builtin::PrintStr:
          case Builtin::AssertFail:
          case Builtin::OracleFail:
            expectOperands(inst, 1);
            if (inst.numOperands() == 1 &&
                inst.operand(0)->kind() != ValueKind::ConstStr)
                error(&inst, "expected string constant operand");
            break;
          case Builtin::Time:
          case Builtin::Yield:
          case Builtin::CaBackoff:
            expectOperands(inst, 0);
            break;
          case Builtin::CaCheckpoint:
          case Builtin::CaCheckpointLocals:
          case Builtin::CaTryRollback:
          case Builtin::CaRecovered:
            expectOperands(inst, 1);
            expectType(inst, 0, Type::I64);
            break;
          case Builtin::None:
            break;
        }
        if (inst.type() != builtinResultType(b))
            error(&inst, "builtin call result type mismatch");
    }

    const Module &m_;
    DiagEngine &diags_;
    const Function *func_ = nullptr;
    std::unordered_set<const Value *> defined_;
    bool ok_ = true;
};

} // namespace

bool
verifyModule(const Module &m, DiagEngine &diags)
{
    Verifier v(m, diags);
    return v.runModule();
}

bool
verifyFunction(const Function &f, DiagEngine &diags)
{
    Verifier v(*f.parent(), diags);
    return v.runFunction(f);
}

} // namespace conair::ir
