/**
 * @file
 * Basic blocks: ordered instruction sequences ending in one terminator.
 */
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace conair::ir {

class Function;

/**
 * A straight-line sequence of instructions with a single terminator.
 * Instructions are held in a std::list so transformation passes can
 * insert/erase while holding stable Instruction pointers.
 */
class BasicBlock
{
  public:
    using InstList = std::list<std::unique_ptr<Instruction>>;
    using iterator = InstList::iterator;

    BasicBlock(std::string name, Function *parent)
        : name_(std::move(name)), parent_(parent)
    {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }
    Function *parent() const { return parent_; }

    InstList &insts() { return insts_; }
    const InstList &insts() const { return insts_; }
    bool empty() const { return insts_.empty(); }
    size_t size() const { return insts_.size(); }

    Instruction *front() { return insts_.front().get(); }
    Instruction *back() { return insts_.back().get(); }

    /** Appends @p inst and returns the raw pointer. */
    Instruction *append(std::unique_ptr<Instruction> inst);

    /** Inserts @p inst immediately before @p pos (which must be here). */
    Instruction *insertBefore(Instruction *pos,
                              std::unique_ptr<Instruction> inst);

    /** Inserts @p inst immediately after @p pos (which must be here). */
    Instruction *insertAfter(Instruction *pos,
                             std::unique_ptr<Instruction> inst);

    /**
     * Unlinks @p inst from this block and returns ownership.  The
     * instruction must have no remaining uses if it is being destroyed.
     */
    std::unique_ptr<Instruction> remove(Instruction *inst);

    /** Erases @p inst entirely (drops operands; must be use-free). */
    void erase(Instruction *inst);

    /** The block terminator, or nullptr while under construction. */
    Instruction *terminator() const;

    bool hasTerminator() const { return terminator() != nullptr; }

    /** Successor blocks per the terminator (empty for Ret/Unreachable). */
    std::vector<BasicBlock *> successors() const;

    /** Iterator pointing at @p inst; fatal() if absent. */
    iterator find(Instruction *inst);

    /** The instruction after @p inst, or nullptr at the end. */
    Instruction *next(Instruction *inst);

    /** The instruction before @p inst, or nullptr at the front. */
    Instruction *prev(Instruction *inst);

  private:
    std::string name_;
    Function *parent_;
    InstList insts_;
};

} // namespace conair::ir
