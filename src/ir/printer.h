/**
 * @file
 * Renders MiniIR to its textual form.  The output round-trips through
 * ir::parseModule (verified by property tests).
 */
#pragma once

#include <string>

#include "ir/module.h"

namespace conair::ir {

/** Prints a whole module. */
std::string printModule(const Module &m);

/** Prints a single function (with its header). */
std::string printFunction(const Function &f);

/** Prints one instruction as it would appear inside printFunction. */
std::string printInstruction(const Instruction &inst);

} // namespace conair::ir
