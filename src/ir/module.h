/**
 * @file
 * The MiniIR module: globals, functions, interned strings, and the
 * constant pool.  One module is one whole program.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "ir/value.h"

namespace conair::ir {

/**
 * A module-level global variable occupying size() consecutive memory
 * cells.  Mutex globals are one-cell variables that the VM treats as
 * lock objects.
 */
class Global
{
  public:
    Global(std::string name, Type elem_type, int64_t size, bool is_mutex)
        : name_(std::move(name)), elemType_(elem_type), size_(size),
          isMutex_(is_mutex)
    {}

    const std::string &name() const { return name_; }
    Type elemType() const { return elemType_; }
    int64_t size() const { return size_; }
    bool isMutex() const { return isMutex_; }

    /// @{ Optional initialiser: one entry per cell (zero-filled if empty).
    const std::vector<double> &initFp() const { return initFp_; }
    const std::vector<int64_t> &initInt() const { return initInt_; }
    void setInitInt(std::vector<int64_t> v) { initInt_ = std::move(v); }
    void setInitFp(std::vector<double> v) { initFp_ = std::move(v); }
    /// @}

    /** Stable index within the module (set by Module::addGlobal). */
    uint32_t id() const { return id_; }
    void setId(uint32_t id) { id_ = id; }

  private:
    std::string name_;
    Type elemType_;
    int64_t size_;
    bool isMutex_;
    std::vector<int64_t> initInt_;
    std::vector<double> initFp_;
    uint32_t id_ = 0;
};

/** A whole MiniIR program. */
class Module
{
  public:
    explicit Module(std::string name = "module") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /// @{ Globals.
    Global *addGlobal(std::string name, Type elem_type, int64_t size,
                      bool is_mutex = false);
    Global *findGlobal(const std::string &name) const;
    const std::vector<std::unique_ptr<Global>> &globals() const
    {
        return globals_;
    }
    /// @}

    /// @{ Functions.
    Function *addFunction(std::string name, Type ret_type);
    Function *findFunction(const std::string &name) const;
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }
    /// @}

    /// @{ Constants (uniqued where cheap; all owned by the module).
    ConstInt *getInt(int64_t v, Type t = Type::I64);
    ConstInt *getBool(bool b) { return getInt(b ? 1 : 0, Type::I1); }
    ConstFloat *getFloat(double v);
    ConstNull *getNull();
    ConstStr *getStr(const std::string &s);
    GlobalAddr *getGlobalAddr(Global *g);
    FuncAddr *getFuncAddr(Function *f);
    /// @}

    /// @{ Interned strings (PrintStr / AssertFail message operands).
    const std::string &strAt(uint32_t id) const { return strings_[id]; }
    uint32_t numStrings() const { return strings_.size(); }
    /// @}

  private:
    std::string name_;
    // Destruction order matters: functions_ (whose instructions unlink
    // their operand uses on destruction) must be destroyed before the
    // constant pool they reference, hence pool_ is declared first.
    std::vector<std::unique_ptr<Value>> pool_;
    std::unordered_map<int64_t, ConstInt *> intCache_;
    std::unordered_map<int64_t, ConstInt *> boolCache_;
    std::unordered_map<std::string, uint32_t> strIds_;
    std::vector<std::string> strings_;
    std::unordered_map<Global *, GlobalAddr *> globalAddrCache_;
    std::unordered_map<Function *, FuncAddr *> funcAddrCache_;
    ConstNull *null_ = nullptr;
    std::vector<std::unique_ptr<Global>> globals_;
    std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace conair::ir
