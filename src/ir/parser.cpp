#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "support/str.h"

namespace conair::ir {

namespace {

enum class Tok : uint8_t {
    End, Ident, Percent, At, Dollar, Int, Float, Str, Tag,
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Comma, Colon, Equal, Arrow,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;   // identifier / %name / @name payload
    int64_t ival = 0;
    double fval = 0;
    SrcLoc loc;
    bool firstOnLine = false;
};

class Lexer
{
  public:
    Lexer(const std::string &src, DiagEngine &diags)
        : src_(src), diags_(diags)
    {}

    std::vector<Token>
    run()
    {
        std::vector<Token> toks;
        bool line_start = true;
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                col_ = 1;
                ++pos_;
                line_start = true;
                continue;
            }
            if (std::isspace((unsigned char)c)) {
                advance();
                continue;
            }
            if (c == ';') { // comment to end of line
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    advance();
                continue;
            }
            Token t = next();
            t.firstOnLine = line_start;
            line_start = false;
            if (t.kind == Tok::End)
                break;
            toks.push_back(std::move(t));
        }
        Token end;
        end.loc = loc();
        toks.push_back(end);
        return toks;
    }

  private:
    SrcLoc loc() const { return {line_, col_}; }

    void
    advance()
    {
        ++pos_;
        ++col_;
    }

    Token
    next()
    {
        Token t;
        t.loc = loc();
        char c = src_[pos_];
        switch (c) {
          case '(': advance(); t.kind = Tok::LParen; return t;
          case ')': advance(); t.kind = Tok::RParen; return t;
          case '[': advance(); t.kind = Tok::LBracket; return t;
          case ']': advance(); t.kind = Tok::RBracket; return t;
          case '{': advance(); t.kind = Tok::LBrace; return t;
          case '}': advance(); t.kind = Tok::RBrace; return t;
          case ',': advance(); t.kind = Tok::Comma; return t;
          case ':': advance(); t.kind = Tok::Colon; return t;
          case '=': advance(); t.kind = Tok::Equal; return t;
          default: break;
        }
        if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
            advance();
            advance();
            t.kind = Tok::Arrow;
            return t;
        }
        if (c == '%' || c == '@' || c == '$') {
            advance();
            t.kind = c == '%' ? Tok::Percent
                     : c == '@' ? Tok::At
                                : Tok::Dollar;
            t.text = ident();
            return t;
        }
        if (c == '#') {
            advance();
            if (pos_ < src_.size() && src_[pos_] == '"') {
                t.kind = Tok::Tag;
                t.text = quoted();
                return t;
            }
            diags_.error(t.loc, "expected string after '#'");
            t.kind = Tok::End;
            return t;
        }
        if (c == '"') {
            t.kind = Tok::Str;
            t.text = quoted();
            return t;
        }
        if (c == '-' || std::isdigit((unsigned char)c)) {
            size_t start = pos_;
            advance();
            bool is_float = false;
            while (pos_ < src_.size()) {
                char d = src_[pos_];
                if (std::isdigit((unsigned char)d)) {
                    advance();
                } else if (d == '.' || d == 'e' || d == 'E' || d == 'n' ||
                           d == 'i' || d == 'f' ||
                           ((d == '+' || d == '-') && pos_ > start &&
                            (src_[pos_ - 1] == 'e' ||
                             src_[pos_ - 1] == 'E'))) {
                    // '.', exponents, and nan/inf spellings mark floats.
                    is_float = true;
                    advance();
                } else {
                    break;
                }
            }
            std::string text = src_.substr(start, pos_ - start);
            if (is_float) {
                t.kind = Tok::Float;
                t.fval = std::strtod(text.c_str(), nullptr);
            } else {
                t.kind = Tok::Int;
                t.ival = std::strtoll(text.c_str(), nullptr, 10);
            }
            return t;
        }
        if (std::isalpha((unsigned char)c) || c == '_' || c == '.') {
            t.kind = Tok::Ident;
            t.text = ident();
            return t;
        }
        diags_.error(t.loc, strfmt("unexpected character '%c'", c));
        t.kind = Tok::End;
        return t;
    }

    std::string
    ident()
    {
        size_t start = pos_;
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (std::isalnum((unsigned char)c) || c == '_' || c == '.')
                advance();
            else
                break;
        }
        return src_.substr(start, pos_ - start);
    }

    std::string
    quoted()
    {
        advance(); // opening quote
        std::string raw;
        while (pos_ < src_.size() && src_[pos_] != '"') {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
                raw += src_[pos_];
                advance();
            }
            raw += src_[pos_];
            advance();
        }
        if (pos_ < src_.size())
            advance(); // closing quote
        return unescape(raw);
    }

    const std::string &src_;
    DiagEngine &diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
};

class Parser
{
  public:
    Parser(std::vector<Token> toks, DiagEngine &diags)
        : toks_(std::move(toks)), diags_(diags)
    {}

    std::unique_ptr<Module>
    run()
    {
        module_ = std::make_unique<Module>();
        prescanFunctions();
        if (diags_.hasErrors())
            return nullptr;
        while (cur().kind != Tok::End && !diags_.hasErrors())
            parseTopLevel();
        return diags_.hasErrors() ? nullptr : std::move(module_);
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    const Token &peek(size_t n = 1) const
    {
        return toks_[std::min(pos_ + n, toks_.size() - 1)];
    }
    void bump() { if (pos_ + 1 < toks_.size()) ++pos_; }

    void
    err(const std::string &msg)
    {
        diags_.error(cur().loc, msg);
    }

    bool
    expect(Tok kind, const char *what)
    {
        if (cur().kind != kind) {
            err(strfmt("expected %s", what));
            return false;
        }
        bump();
        return true;
    }

    /** First pass: create Function objects so calls can forward-ref. */
    void
    prescanFunctions()
    {
        size_t save = pos_;
        while (toks_[pos_].kind != Tok::End) {
            if (toks_[pos_].kind == Tok::Ident &&
                toks_[pos_].text == "func") {
                bump();
                if (cur().kind != Tok::At) {
                    err("expected @name after 'func'");
                    return;
                }
                std::string name = cur().text;
                bump();
                // Skip "( args )" to find "-> type".
                if (!expect(Tok::LParen, "'('"))
                    return;
                int depth = 1;
                std::vector<std::pair<Type, std::string>> args;
                while (depth > 0 && cur().kind != Tok::End) {
                    if (cur().kind == Tok::LParen)
                        ++depth;
                    if (cur().kind == Tok::RParen) {
                        --depth;
                        bump();
                        continue;
                    }
                    if (cur().kind == Tok::Ident) {
                        Type t;
                        if (!typeFromName(cur().text, t)) {
                            err("expected argument type");
                            return;
                        }
                        bump();
                        if (cur().kind != Tok::Percent) {
                            err("expected %name after argument type");
                            return;
                        }
                        args.push_back({t, cur().text});
                        bump();
                        if (cur().kind == Tok::Comma)
                            bump();
                    } else {
                        err("malformed argument list");
                        return;
                    }
                }
                if (!expect(Tok::Arrow, "'->'"))
                    return;
                Type ret;
                if (cur().kind != Tok::Ident ||
                    !typeFromName(cur().text, ret)) {
                    err("expected return type");
                    return;
                }
                bump();
                if (module_->findFunction(name)) {
                    err(strfmt("duplicate function @%s", name.c_str()));
                    return;
                }
                Function *f = module_->addFunction(name, ret);
                for (auto &[t, n] : args)
                    f->addArg(t, n);
            } else {
                bump();
            }
        }
        pos_ = save;
    }

    void
    parseTopLevel()
    {
        if (cur().kind != Tok::Ident) {
            err("expected top-level declaration");
            return;
        }
        const std::string &kw = cur().text;
        if (kw == "module") {
            bump();
            if (cur().kind == Tok::Str) {
                module_->setName(cur().text);
                bump();
            }
        } else if (kw == "mutex") {
            bump();
            if (cur().kind != Tok::At) {
                err("expected @name after 'mutex'");
                return;
            }
            if (module_->findGlobal(cur().text)) {
                err(strfmt("duplicate global @%s", cur().text.c_str()));
                return;
            }
            module_->addGlobal(cur().text, Type::I64, 1, /*is_mutex=*/true);
            bump();
        } else if (kw == "global") {
            parseGlobal();
        } else if (kw == "func") {
            parseFunction();
        } else {
            err(strfmt("unknown top-level keyword '%s'", kw.c_str()));
        }
    }

    void
    parseGlobal()
    {
        bump(); // 'global'
        if (cur().kind != Tok::At) {
            err("expected @name after 'global'");
            return;
        }
        std::string name = cur().text;
        bump();
        if (!expect(Tok::Colon, "':'"))
            return;
        Type t;
        if (cur().kind != Tok::Ident || !typeFromName(cur().text, t)) {
            err("expected global element type");
            return;
        }
        bump();
        if (!expect(Tok::LBracket, "'['"))
            return;
        if (cur().kind != Tok::Int) {
            err("expected global size");
            return;
        }
        int64_t size = cur().ival;
        bump();
        if (!expect(Tok::RBracket, "']'"))
            return;
        if (module_->findGlobal(name)) {
            err(strfmt("duplicate global @%s", name.c_str()));
            return;
        }
        if (size <= 0) {
            err(strfmt("global @%s has non-positive size", name.c_str()));
            return;
        }
        Global *g = module_->addGlobal(name, t, size);
        if (cur().kind == Tok::Equal) {
            bump();
            if (!expect(Tok::LBracket, "'['"))
                return;
            std::vector<int64_t> ivals;
            std::vector<double> fvals;
            while (cur().kind != Tok::RBracket && cur().kind != Tok::End) {
                if (cur().kind == Tok::Int) {
                    ivals.push_back(cur().ival);
                    fvals.push_back(double(cur().ival));
                } else if (cur().kind == Tok::Float) {
                    fvals.push_back(cur().fval);
                    ivals.push_back(int64_t(cur().fval));
                } else {
                    err("expected numeric initialiser");
                    return;
                }
                bump();
                if (cur().kind == Tok::Comma)
                    bump();
            }
            expect(Tok::RBracket, "']'");
            if (t == Type::F64)
                g->setInitFp(std::move(fvals));
            else
                g->setInitInt(std::move(ivals));
        }
    }

    //
    // Function bodies.
    //

    struct Fixup
    {
        Instruction *inst;
        unsigned index;
        std::string name;
        SrcLoc loc;
    };

    void
    parseFunction()
    {
        bump(); // 'func'
        std::string name = cur().text;
        bump();
        // Signature already handled by prescan: skip to '{'.
        while (cur().kind != Tok::LBrace && cur().kind != Tok::End)
            bump();
        Function *f = module_->findFunction(name);
        if (!f) {
            err(strfmt("function @%s missing from prescan", name.c_str()));
            return;
        }
        if (!expect(Tok::LBrace, "'{'"))
            return;

        values_.clear();
        fixups_.clear();
        blocks_.clear();
        for (unsigned i = 0; i < f->numArgs(); ++i)
            values_[f->arg(i)->name()] = f->arg(i);

        prescanLabels(f);

        BasicBlock *bb = nullptr;
        unsigned next_value = 0;
        while (cur().kind != Tok::RBrace && cur().kind != Tok::End &&
               !diags_.hasErrors()) {
            if (cur().kind == Tok::Ident && peek().kind == Tok::Colon &&
                cur().firstOnLine) {
                bb = blocks_[cur().text];
                bump();
                bump();
                continue;
            }
            if (!bb) {
                err("instruction before first block label");
                return;
            }
            parseInstruction(f, bb, next_value);
        }
        expect(Tok::RBrace, "'}'");
        resolveFixups();
    }

    /** Pre-creates the function's blocks, in file order. */
    void
    prescanLabels(Function *f)
    {
        size_t save = pos_;
        int depth = 1;
        while (depth > 0 && toks_[pos_].kind != Tok::End) {
            if (toks_[pos_].kind == Tok::LBrace)
                ++depth;
            else if (toks_[pos_].kind == Tok::RBrace)
                --depth;
            else if (toks_[pos_].kind == Tok::Ident &&
                     toks_[pos_].firstOnLine &&
                     toks_[pos_ + 1].kind == Tok::Colon) {
                blocks_[toks_[pos_].text] = f->addBlock(toks_[pos_].text);
            }
            ++pos_;
        }
        pos_ = save;
    }

    BasicBlock *
    blockRef(const std::string &name)
    {
        auto it = blocks_.find(name);
        if (it == blocks_.end()) {
            err(strfmt("unknown block label '%s'", name.c_str()));
            return nullptr;
        }
        return it->second;
    }

    /** Parses one operand; may record a fixup for forward %refs. */
    void
    parseOperand(Instruction *inst)
    {
        inst->addOperand(nullptr);
        unsigned index = inst->numOperands() - 1;
        switch (cur().kind) {
          case Tok::Int:
            inst->setOperand(index, module_->getInt(cur().ival));
            bump();
            return;
          case Tok::Float:
            inst->setOperand(index, module_->getFloat(cur().fval));
            bump();
            return;
          case Tok::Str:
            inst->setOperand(index, module_->getStr(cur().text));
            bump();
            return;
          case Tok::Percent: {
            auto it = values_.find(cur().text);
            if (it != values_.end())
                inst->setOperand(index, it->second);
            else
                fixups_.push_back({inst, index, cur().text, cur().loc});
            bump();
            return;
          }
          case Tok::At: {
            if (Global *g = module_->findGlobal(cur().text)) {
                inst->setOperand(index, module_->getGlobalAddr(g));
            } else if (Function *fn = module_->findFunction(cur().text)) {
                inst->setOperand(index, module_->getFuncAddr(fn));
            } else {
                err(strfmt("unknown symbol @%s", cur().text.c_str()));
            }
            bump();
            return;
          }
          case Tok::Ident:
            if (cur().text == "null") {
                inst->setOperand(index, module_->getNull());
                bump();
                return;
            }
            if (cur().text == "true" || cur().text == "false") {
                inst->setOperand(index,
                                 module_->getBool(cur().text == "true"));
                bump();
                return;
            }
            if (cur().text == "inf" || cur().text == "nan") {
                inst->setOperand(index,
                                 module_->getFloat(
                                     std::strtod(cur().text.c_str(),
                                                 nullptr)));
                bump();
                return;
            }
            [[fallthrough]];
          default:
            err("expected operand");
        }
    }

    void
    parseInstruction(Function *f, BasicBlock *bb, unsigned &next_value)
    {
        (void)f;
        std::string result_name;
        bool has_result = false;
        if (cur().kind == Tok::Percent) {
            result_name = cur().text;
            has_result = true;
            bump();
            if (!expect(Tok::Equal, "'='"))
                return;
        }
        if (cur().kind != Tok::Ident) {
            err("expected opcode");
            return;
        }
        std::string opname = cur().text;
        SrcLoc oploc = cur().loc;
        bump();

        std::unique_ptr<Instruction> inst;

        if (opname == "alloca") {
            inst = std::make_unique<Instruction>(Opcode::Alloca, Type::Ptr);
            if (cur().kind == Tok::Int) {
                inst->setAllocaSize(cur().ival);
                bump();
            }
        } else if (opname == "load") {
            Type t;
            if (cur().kind != Tok::Ident || !typeFromName(cur().text, t)) {
                err("expected load result type");
                return;
            }
            bump();
            if (!expect(Tok::Comma, "','"))
                return;
            inst = std::make_unique<Instruction>(Opcode::Load, t);
            parseOperand(inst.get());
        } else if (opname == "phi") {
            Type t;
            if (cur().kind != Tok::Ident || !typeFromName(cur().text, t)) {
                err("expected phi type");
                return;
            }
            bump();
            inst = std::make_unique<Instruction>(Opcode::Phi, t);
            while (cur().kind == Tok::LBracket) {
                bump();
                parseOperand(inst.get());
                if (!expect(Tok::Comma, "','"))
                    return;
                if (cur().kind != Tok::Ident) {
                    err("expected block label in phi");
                    return;
                }
                BasicBlock *in = blockRef(cur().text);
                bump();
                if (!expect(Tok::RBracket, "']'"))
                    return;
                inst->addBlockOp(in);
                if (cur().kind == Tok::Comma)
                    bump();
            }
        } else if (opname == "br") {
            inst = std::make_unique<Instruction>(Opcode::Br, Type::Void);
            if (cur().kind != Tok::Ident) {
                err("expected branch target");
                return;
            }
            inst->addBlockOp(blockRef(cur().text));
            bump();
        } else if (opname == "condbr") {
            inst = std::make_unique<Instruction>(Opcode::CondBr, Type::Void);
            parseOperand(inst.get());
            if (!expect(Tok::Comma, "','"))
                return;
            if (cur().kind != Tok::Ident) {
                err("expected true target");
                return;
            }
            inst->addBlockOp(blockRef(cur().text));
            bump();
            if (!expect(Tok::Comma, "','"))
                return;
            if (cur().kind != Tok::Ident) {
                err("expected false target");
                return;
            }
            inst->addBlockOp(blockRef(cur().text));
            bump();
        } else if (opname == "ret") {
            inst = std::make_unique<Instruction>(Opcode::Ret, Type::Void);
            // Optional operand: present unless the next token starts a new
            // statement or closes the body.
            if (cur().kind != Tok::RBrace &&
                !(cur().kind == Tok::Ident && peek().kind == Tok::Colon) &&
                !cur().firstOnLine)
                parseOperand(inst.get());
        } else if (opname == "unreachable") {
            inst = std::make_unique<Instruction>(Opcode::Unreachable,
                                                 Type::Void);
        } else if (opname == "call") {
            Function *callee = nullptr;
            Builtin b = Builtin::None;
            if (cur().kind == Tok::At) {
                callee = module_->findFunction(cur().text);
                if (!callee) {
                    err(strfmt("unknown function @%s", cur().text.c_str()));
                    return;
                }
            } else if (cur().kind == Tok::Dollar) {
                b = builtinFromName(cur().text);
                if (b == Builtin::None) {
                    err(strfmt("unknown builtin $%s", cur().text.c_str()));
                    return;
                }
            } else {
                err("expected @function or $builtin");
                return;
            }
            bump();
            Type ret =
                callee ? callee->returnType() : builtinResultType(b);
            inst = std::make_unique<Instruction>(Opcode::Call, ret);
            inst->setCallee(callee);
            inst->setBuiltin(b);
            if (!expect(Tok::LParen, "'('"))
                return;
            while (cur().kind != Tok::RParen && cur().kind != Tok::End &&
                   !diags_.hasErrors()) {
                parseOperand(inst.get());
                if (cur().kind == Tok::Comma)
                    bump();
            }
            expect(Tok::RParen, "')'");
        } else if (opname == "sched_hint") {
            inst =
                std::make_unique<Instruction>(Opcode::SchedHint, Type::Void);
            if (cur().kind != Tok::Int) {
                err("expected hint id");
                return;
            }
            inst->setHintId(uint64_t(cur().ival));
            bump();
        } else {
            Opcode op;
            if (!opcodeFromName(opname, op)) {
                diags_.error(oploc,
                             strfmt("unknown opcode '%s'", opname.c_str()));
                return;
            }
            Type t = Type::I64;
            if (op == Opcode::Store)
                t = Type::Void;
            else if (op >= Opcode::FAdd && op <= Opcode::FDiv)
                t = Type::F64;
            else if (op >= Opcode::ICmpEq && op <= Opcode::FCmpGe)
                t = Type::I1;
            else if (op == Opcode::SiToFp)
                t = Type::F64;
            else if (op == Opcode::Zext)
                t = Type::I64;
            else if (op == Opcode::PtrAdd)
                t = Type::Ptr;
            inst = std::make_unique<Instruction>(op, t);
            bool first = true;
            while (cur().kind != Tok::End) {
                if (!first) {
                    if (cur().kind != Tok::Comma)
                        break;
                    bump();
                }
                parseOperand(inst.get());
                first = false;
                if (cur().kind != Tok::Comma)
                    break;
            }
        }

        if (!inst)
            return;
        if (cur().kind == Tok::Tag) {
            inst->setTag(cur().text);
            bump();
        }
        inst->setLoc(oploc);
        Instruction *placed = bb->append(std::move(inst));
        if (placed->producesValue()) {
            std::string name =
                has_result ? result_name : strfmt("%u", next_value);
            ++next_value;
            values_[name] = placed;
        } else if (has_result) {
            err("instruction produces no value but has a result name");
        }
    }

    void
    resolveFixups()
    {
        for (const Fixup &fx : fixups_) {
            auto it = values_.find(fx.name);
            if (it == values_.end()) {
                diags_.error(fx.loc,
                             strfmt("undefined value %%%s",
                                    fx.name.c_str()));
                continue;
            }
            fx.inst->setOperand(fx.index, it->second);
        }
    }

    std::vector<Token> toks_;
    DiagEngine &diags_;
    size_t pos_ = 0;
    std::unique_ptr<Module> module_;
    std::unordered_map<std::string, Value *> values_;
    std::unordered_map<std::string, BasicBlock *> blocks_;
    std::vector<Fixup> fixups_;
};

} // namespace

std::unique_ptr<Module>
parseModule(const std::string &text, DiagEngine &diags)
{
    Lexer lexer(text, diags);
    std::vector<Token> toks = lexer.run();
    if (diags.hasErrors())
        return nullptr;
    Parser parser(std::move(toks), diags);
    return parser.run();
}

} // namespace conair::ir
