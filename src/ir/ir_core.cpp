/**
 * @file
 * Implementation of the MiniIR core: types, builtins, values,
 * instructions, blocks, functions, and modules.
 */
#include "ir/basic_block.h"
#include "ir/builtins.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/type.h"
#include "ir/value.h"

#include <algorithm>
#include <cstring>

#include "support/diag.h"
#include "support/str.h"

namespace conair::ir {

//
// Type
//

const char *
typeName(Type t)
{
    switch (t) {
      case Type::Void: return "void";
      case Type::I1: return "i1";
      case Type::I64: return "i64";
      case Type::F64: return "f64";
      case Type::Ptr: return "ptr";
    }
    return "?";
}

bool
typeFromName(const std::string &s, Type &out)
{
    for (Type t : {Type::Void, Type::I1, Type::I64, Type::F64, Type::Ptr}) {
        if (s == typeName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

//
// Builtins
//

namespace {

struct BuiltinInfo
{
    Builtin b;
    const char *name;
    Type result;
};

const BuiltinInfo builtinTable[] = {
    {Builtin::ThreadCreate, "thread_create", Type::I64},
    {Builtin::ThreadJoin, "thread_join", Type::Void},
    {Builtin::MutexLock, "mutex_lock", Type::Void},
    {Builtin::MutexUnlock, "mutex_unlock", Type::Void},
    {Builtin::MutexTimedLock, "mutex_timedlock", Type::I64},
    {Builtin::Malloc, "malloc", Type::Ptr},
    {Builtin::Free, "free", Type::Void},
    {Builtin::PrintI64, "print_i64", Type::Void},
    {Builtin::PrintF64, "print_f64", Type::Void},
    {Builtin::PrintStr, "print_str", Type::Void},
    {Builtin::AssertFail, "assert_fail", Type::Void},
    {Builtin::OracleFail, "oracle_fail", Type::Void},
    {Builtin::Time, "time", Type::I64},
    {Builtin::Yield, "yield", Type::Void},
    {Builtin::Sleep, "sleep", Type::Void},
    {Builtin::RandInt, "rand_int", Type::I64},
    {Builtin::CaCheckpoint, "conair.checkpoint", Type::Void},
    {Builtin::CaCheckpointLocals, "conair.checkpoint_locals",
     Type::Void},
    {Builtin::CaTryRollback, "conair.try_rollback", Type::Void},
    {Builtin::CaBackoff, "conair.backoff", Type::Void},
    {Builtin::CaNoteAlloc, "conair.note_alloc", Type::Void},
    {Builtin::CaNoteLock, "conair.note_lock", Type::Void},
    {Builtin::CaPtrCheck, "conair.ptr_check", Type::I1},
    {Builtin::CaRecovered, "conair.recovered", Type::Void},
};

} // namespace

const char *
builtinName(Builtin b)
{
    for (const auto &info : builtinTable)
        if (info.b == b)
            return info.name;
    return "<none>";
}

Builtin
builtinFromName(const std::string &name)
{
    for (const auto &info : builtinTable)
        if (name == info.name)
            return info.b;
    return Builtin::None;
}

Type
builtinResultType(Builtin b)
{
    for (const auto &info : builtinTable)
        if (info.b == b)
            return info.result;
    return Type::Void;
}

bool
builtinIsOutput(Builtin b)
{
    return b == Builtin::PrintI64 || b == Builtin::PrintF64 ||
           b == Builtin::PrintStr;
}

bool
builtinIsConAir(Builtin b)
{
    switch (b) {
      case Builtin::CaCheckpoint:
      case Builtin::CaCheckpointLocals:
      case Builtin::CaTryRollback:
      case Builtin::CaBackoff:
      case Builtin::CaNoteAlloc:
      case Builtin::CaNoteLock:
      case Builtin::CaPtrCheck:
      case Builtin::CaRecovered:
        return true;
      default:
        return false;
    }
}

//
// Value
//

void
Value::addUse(Instruction *user, unsigned index)
{
    uses_.push_back({user, index});
}

void
Value::removeUse(Instruction *user, unsigned index)
{
    auto it = std::find(uses_.begin(), uses_.end(), Use{user, index});
    if (it == uses_.end())
        fatal("Value::removeUse: use not found");
    uses_.erase(it);
}

void
Value::replaceAllUsesWith(Value *repl)
{
    if (repl == this)
        return;
    // setOperand mutates uses_, so iterate over a snapshot.
    std::vector<Use> snapshot = uses_;
    for (const Use &u : snapshot)
        u.user->setOperand(u.index, repl);
}

bool
Value::isConstant() const
{
    switch (kind_) {
      case ValueKind::ConstInt:
      case ValueKind::ConstFloat:
      case ValueKind::ConstNull:
      case ValueKind::ConstStr:
      case ValueKind::GlobalAddr:
      case ValueKind::FuncAddr:
        return true;
      default:
        return false;
    }
}

//
// Instruction
//

namespace {

struct OpcodeInfo
{
    Opcode op;
    const char *name;
};

const OpcodeInfo opcodeTable[] = {
    {Opcode::Alloca, "alloca"},   {Opcode::Load, "load"},
    {Opcode::Store, "store"},     {Opcode::Add, "add"},
    {Opcode::Sub, "sub"},         {Opcode::Mul, "mul"},
    {Opcode::SDiv, "sdiv"},       {Opcode::SRem, "srem"},
    {Opcode::And, "and"},         {Opcode::Or, "or"},
    {Opcode::Xor, "xor"},         {Opcode::Shl, "shl"},
    {Opcode::Shr, "shr"},         {Opcode::FAdd, "fadd"},
    {Opcode::FSub, "fsub"},       {Opcode::FMul, "fmul"},
    {Opcode::FDiv, "fdiv"},       {Opcode::ICmpEq, "icmp.eq"},
    {Opcode::ICmpNe, "icmp.ne"},  {Opcode::ICmpSlt, "icmp.slt"},
    {Opcode::ICmpSle, "icmp.sle"},{Opcode::ICmpSgt, "icmp.sgt"},
    {Opcode::ICmpSge, "icmp.sge"},{Opcode::FCmpEq, "fcmp.eq"},
    {Opcode::FCmpNe, "fcmp.ne"},  {Opcode::FCmpLt, "fcmp.lt"},
    {Opcode::FCmpLe, "fcmp.le"},  {Opcode::FCmpGt, "fcmp.gt"},
    {Opcode::FCmpGe, "fcmp.ge"},  {Opcode::SiToFp, "sitofp"},
    {Opcode::FpToSi, "fptosi"},   {Opcode::Zext, "zext"},
    {Opcode::PtrAdd, "ptradd"},
    {Opcode::Phi, "phi"},         {Opcode::Br, "br"},
    {Opcode::CondBr, "condbr"},   {Opcode::Ret, "ret"},
    {Opcode::Unreachable, "unreachable"}, {Opcode::Call, "call"},
    {Opcode::SchedHint, "sched_hint"},
};

} // namespace

const char *
opcodeName(Opcode op)
{
    for (const auto &info : opcodeTable)
        if (info.op == op)
            return info.name;
    return "?";
}

bool
opcodeFromName(const std::string &s, Opcode &out)
{
    for (const auto &info : opcodeTable) {
        if (s == info.name) {
            out = info.op;
            return true;
        }
    }
    return false;
}

void
Instruction::setOperand(unsigned i, Value *v)
{
    if (i >= operands_.size())
        fatal("Instruction::setOperand: index out of range");
    if (operands_[i])
        operands_[i]->removeUse(this, i);
    operands_[i] = v;
    if (v)
        v->addUse(this, i);
}

void
Instruction::addOperand(Value *v)
{
    operands_.push_back(nullptr);
    setOperand(operands_.size() - 1, v);
}

void
Instruction::dropAllOperands()
{
    for (unsigned i = 0; i < operands_.size(); ++i) {
        if (operands_[i])
            operands_[i]->removeUse(this, i);
    }
    operands_.clear();
}

void
Instruction::addIncoming(Value *v, BasicBlock *bb)
{
    addOperand(v);
    blockOps_.push_back(bb);
}

void
Instruction::removeIncoming(BasicBlock *bb)
{
    for (unsigned i = 0; i < blockOps_.size(); ++i) {
        if (blockOps_[i] != bb)
            continue;
        // Detach the matching operand, compacting both arrays.  Rebuild
        // the use bookkeeping because operand indices shift.
        std::vector<Value *> vals;
        std::vector<BasicBlock *> blocks;
        for (unsigned j = 0; j < blockOps_.size(); ++j) {
            if (j == i)
                continue;
            vals.push_back(operands_[j]);
            blocks.push_back(blockOps_[j]);
        }
        dropAllOperands();
        blockOps_.clear();
        for (unsigned j = 0; j < vals.size(); ++j)
            addIncoming(vals[j], blocks[j]);
        return;
    }
}

bool
Instruction::isTerminator() const
{
    switch (op_) {
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
      case Opcode::Unreachable:
        return true;
      default:
        return false;
    }
}

std::vector<BasicBlock *>
Instruction::successors() const
{
    switch (op_) {
      case Opcode::Br:
        return {blockOps_[0]};
      case Opcode::CondBr:
        return {blockOps_[0], blockOps_[1]};
      default:
        return {};
    }
}

//
// BasicBlock
//

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    inst->setParent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
}

BasicBlock::iterator
BasicBlock::find(Instruction *inst)
{
    for (auto it = insts_.begin(); it != insts_.end(); ++it)
        if (it->get() == inst)
            return it;
    fatal("BasicBlock::find: instruction not in block");
}

Instruction *
BasicBlock::insertBefore(Instruction *pos, std::unique_ptr<Instruction> inst)
{
    auto it = find(pos);
    inst->setParent(this);
    return insts_.insert(it, std::move(inst))->get();
}

Instruction *
BasicBlock::insertAfter(Instruction *pos, std::unique_ptr<Instruction> inst)
{
    auto it = find(pos);
    ++it;
    inst->setParent(this);
    return insts_.insert(it, std::move(inst))->get();
}

std::unique_ptr<Instruction>
BasicBlock::remove(Instruction *inst)
{
    auto it = find(inst);
    std::unique_ptr<Instruction> owned = std::move(*it);
    insts_.erase(it);
    owned->setParent(nullptr);
    return owned;
}

void
BasicBlock::erase(Instruction *inst)
{
    if (inst->hasUses())
        fatal("BasicBlock::erase: instruction still has uses");
    std::unique_ptr<Instruction> owned = remove(inst);
    owned->dropAllOperands();
}

Instruction *
BasicBlock::terminator() const
{
    if (insts_.empty())
        return nullptr;
    Instruction *last = insts_.back().get();
    return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    Instruction *term = terminator();
    return term ? term->successors() : std::vector<BasicBlock *>{};
}

Instruction *
BasicBlock::next(Instruction *inst)
{
    auto it = find(inst);
    ++it;
    return it == insts_.end() ? nullptr : it->get();
}

Instruction *
BasicBlock::prev(Instruction *inst)
{
    auto it = find(inst);
    return it == insts_.begin() ? nullptr : std::prev(it)->get();
}

//
// Function
//

Function::~Function()
{
    for (auto &bb : blocks_)
        for (auto &inst : bb->insts())
            inst->dropAllOperands();
}

Argument *
Function::addArg(Type t, std::string name)
{
    args_.push_back(
        std::make_unique<Argument>(t, std::move(name), args_.size(), this));
    return args_.back().get();
}

BasicBlock *
Function::addBlock(std::string name)
{
    blocks_.push_back(
        std::make_unique<BasicBlock>(freshBlockName(name), this));
    return blocks_.back().get();
}

BasicBlock *
Function::insertBlockAfter(BasicBlock *pos, std::string name)
{
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == pos) {
            ++it;
            auto nb =
                std::make_unique<BasicBlock>(freshBlockName(name), this);
            return blocks_.insert(it, std::move(nb))->get();
        }
    }
    fatal("Function::insertBlockAfter: block not found");
}

BasicBlock *
Function::entry() const
{
    return blocks_.empty() ? nullptr : blocks_.front().get();
}

std::vector<std::pair<BasicBlock *, std::vector<BasicBlock *>>>
Function::predecessorList() const
{
    std::vector<std::pair<BasicBlock *, std::vector<BasicBlock *>>> out;
    for (const auto &bb : blocks_)
        out.push_back({bb.get(), {}});
    auto slot = [&](BasicBlock *bb) -> std::vector<BasicBlock *> & {
        for (auto &entry : out)
            if (entry.first == bb)
                return entry.second;
        fatal("predecessorList: successor not in function");
    };
    for (const auto &bb : blocks_)
        for (BasicBlock *succ : bb->successors())
            slot(succ).push_back(bb.get());
    return out;
}

std::string
Function::freshBlockName(const std::string &base)
{
    // Keep the requested name when it is still free.
    bool taken = false;
    for (const auto &bb : blocks_) {
        if (bb->name() == base) {
            taken = true;
            break;
        }
    }
    if (!taken)
        return base;
    for (;;) {
        std::string cand = strfmt("%s.%u", base.c_str(), ++nameCounter_);
        bool clash = false;
        for (const auto &bb : blocks_) {
            if (bb->name() == cand) {
                clash = true;
                break;
            }
        }
        if (!clash)
            return cand;
    }
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->size();
    return n;
}

//
// Module
//

Global *
Module::addGlobal(std::string name, Type elem_type, int64_t size,
                  bool is_mutex)
{
    if (findGlobal(name))
        fatal(strfmt("duplicate global @%s", name.c_str()));
    globals_.push_back(
        std::make_unique<Global>(std::move(name), elem_type, size, is_mutex));
    Global *g = globals_.back().get();
    g->setId(globals_.size() - 1);
    return g;
}

Global *
Module::findGlobal(const std::string &name) const
{
    for (const auto &g : globals_)
        if (g->name() == name)
            return g.get();
    return nullptr;
}

Function *
Module::addFunction(std::string name, Type ret_type)
{
    if (findFunction(name))
        fatal(strfmt("duplicate function @%s", name.c_str()));
    functions_.push_back(
        std::make_unique<Function>(std::move(name), ret_type, this));
    return functions_.back().get();
}

Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : functions_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

ConstInt *
Module::getInt(int64_t v, Type t)
{
    auto &cache = t == Type::I1 ? boolCache_ : intCache_;
    auto it = cache.find(v);
    if (it != cache.end())
        return it->second;
    pool_.push_back(std::make_unique<ConstInt>(v, t));
    auto *c = static_cast<ConstInt *>(pool_.back().get());
    cache[v] = c;
    return c;
}

ConstFloat *
Module::getFloat(double v)
{
    pool_.push_back(std::make_unique<ConstFloat>(v));
    return static_cast<ConstFloat *>(pool_.back().get());
}

ConstNull *
Module::getNull()
{
    if (!null_) {
        pool_.push_back(std::make_unique<ConstNull>());
        null_ = static_cast<ConstNull *>(pool_.back().get());
    }
    return null_;
}

ConstStr *
Module::getStr(const std::string &s)
{
    uint32_t id;
    auto it = strIds_.find(s);
    if (it != strIds_.end()) {
        id = it->second;
    } else {
        id = strings_.size();
        strings_.push_back(s);
        strIds_[s] = id;
    }
    pool_.push_back(std::make_unique<ConstStr>(id));
    return static_cast<ConstStr *>(pool_.back().get());
}

GlobalAddr *
Module::getGlobalAddr(Global *g)
{
    auto it = globalAddrCache_.find(g);
    if (it != globalAddrCache_.end())
        return it->second;
    pool_.push_back(std::make_unique<GlobalAddr>(g));
    auto *addr = static_cast<GlobalAddr *>(pool_.back().get());
    globalAddrCache_[g] = addr;
    return addr;
}

FuncAddr *
Module::getFuncAddr(Function *f)
{
    auto it = funcAddrCache_.find(f);
    if (it != funcAddrCache_.end())
        return it->second;
    pool_.push_back(std::make_unique<FuncAddr>(f));
    auto *addr = static_cast<FuncAddr *>(pool_.back().get());
    funcAddrCache_[f] = addr;
    return addr;
}

} // namespace conair::ir
