/**
 * @file
 * Builtin (runtime-provided) functions callable from MiniIR.
 *
 * Builtins model the libc/pthread surface the paper's applications use
 * (threads, mutexes, allocation, output) plus the ConAir runtime
 * intrinsics that the code transformation inserts (checkpoint, rollback,
 * compensation logging, pointer sanity check).
 */
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.h"

namespace conair::ir {

/** Identifiers of all runtime-provided functions. */
enum class Builtin : uint8_t {
    None,

    // Threading (pthread stand-ins).
    ThreadCreate,   ///< (func, i64) -> i64 tid
    ThreadJoin,     ///< (i64 tid) -> void
    MutexLock,      ///< (ptr mutex) -> void
    MutexUnlock,    ///< (ptr mutex) -> void
    MutexTimedLock, ///< (ptr mutex, i64 timeout) -> i64 (0 ok / 1 timeout)

    // Memory.
    Malloc, ///< (i64 cells) -> ptr
    Free,   ///< (ptr) -> void

    // Output functions (potential wrong-output failure sites).
    PrintI64, ///< (i64) -> void
    PrintF64, ///< (f64) -> void
    PrintStr, ///< (str constant) -> void

    // Failure reporting (lowered from assert()/oracle() in MiniC).
    AssertFail, ///< (str msg) -> noreturn
    OracleFail, ///< (str msg) -> noreturn

    // Misc runtime services.
    Time,    ///< () -> i64 current virtual clock
    Yield,   ///< () -> void voluntary reschedule
    Sleep,   ///< (i64 ticks) -> void virtual-time sleep
    RandInt, ///< (i64 bound) -> i64 from the VM's seeded app RNG

    // ConAir runtime intrinsics (inserted by the transform only).
    CaCheckpoint,  ///< (i64 pointId) -> void: save register image (setjmp)
    CaCheckpointLocals, ///< (i64 pointId) -> void: register image PLUS
                        ///< the frame's stack slots (the Fig 4 design
                        ///< point "regions with local-variable writes";
                        ///< costs time proportional to the slots saved)
    CaTryRollback, ///< (i64 siteId) -> void: longjmp, or return if giving up
    CaBackoff,     ///< () -> void: small random sleep (deadlock livelock fix)
    CaNoteAlloc,   ///< (ptr) -> void: compensation log for malloc (§4.1)
    CaNoteLock,    ///< (ptr) -> void: compensation log for lock (§4.1)
    CaPtrCheck,    ///< (ptr) -> i1: sanity check before dereference (Fig 5c)
    CaRecovered,   ///< (i64 siteId) -> void: zero-cost measurement hook on
                   ///< a failure site's success path (recovery latency,
                   ///< Table 7); does not advance the virtual clock
};

/** Canonical spelling used by the printer/parser ("thread_create", ...). */
const char *builtinName(Builtin b);

/** Looks a builtin up by name; returns Builtin::None when unknown. */
Builtin builtinFromName(const std::string &name);

/** Result type of a builtin call. */
Type builtinResultType(Builtin b);

/** True for the output functions (wrong-output failure-site candidates). */
bool builtinIsOutput(Builtin b);

/** True for ConAir runtime intrinsics (never idempotency-destroying). */
bool builtinIsConAir(Builtin b);

} // namespace conair::ir
