#include "ir/clone.h"

#include "ir/parser.h"
#include "ir/printer.h"
#include "support/diag.h"

namespace conair::ir {

std::unique_ptr<Module>
cloneModule(const Module &m)
{
    DiagEngine diags;
    std::unique_ptr<Module> copy = parseModule(printModule(m), diags);
    if (!copy)
        fatal("cloneModule: printed module failed to re-parse");
    copy->setName(m.name());
    return copy;
}

} // namespace conair::ir
