/**
 * @file
 * Functions: argument lists plus an ordered set of basic blocks.
 */
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace conair::ir {

class Module;

/** A MiniIR function definition. */
class Function
{
  public:
    using BlockList = std::list<std::unique_ptr<BasicBlock>>;

    Function(std::string name, Type ret_type, Module *parent)
        : name_(std::move(name)), returnType_(ret_type), parent_(parent)
    {}

    /**
     * Severs every operand link before the blocks are destroyed: blocks
     * die in list order, so without this an instruction's destructor
     * could unregister a use from an operand that is already gone.
     */
    ~Function();

    const std::string &name() const { return name_; }
    Type returnType() const { return returnType_; }
    Module *parent() const { return parent_; }

    /// @{ Arguments.
    Argument *addArg(Type t, std::string name);
    unsigned numArgs() const { return args_.size(); }
    Argument *arg(unsigned i) const { return args_[i].get(); }
    /// @}

    /// @{ Blocks.  The first block is the entry block.
    BasicBlock *addBlock(std::string name);
    BasicBlock *insertBlockAfter(BasicBlock *pos, std::string name);
    BlockList &blocks() { return blocks_; }
    const BlockList &blocks() const { return blocks_; }
    BasicBlock *entry() const;
    size_t numBlocks() const { return blocks_.size(); }
    /// @}

    /** Predecessor map, recomputed on each call (CFG may have changed). */
    std::vector<std::pair<BasicBlock *, std::vector<BasicBlock *>>>
    predecessorList() const;

    /** Makes a block label unique within this function. */
    std::string freshBlockName(const std::string &base);

    /** Total instruction count across all blocks. */
    size_t instructionCount() const;

  private:
    std::string name_;
    Type returnType_;
    Module *parent_;
    std::vector<std::unique_ptr<Argument>> args_;
    BlockList blocks_;
    unsigned nameCounter_ = 0;
};

} // namespace conair::ir
