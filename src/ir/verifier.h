/**
 * @file
 * Structural and type well-formedness checks for MiniIR modules.
 *
 * Run after the front-end, after mem2reg, and after the ConAir
 * transformation; every pass must leave the module verifier-clean
 * (enforced by tests).
 */
#pragma once

#include "ir/module.h"
#include "support/diag.h"

namespace conair::ir {

/**
 * Verifies @p m; reports problems through @p diags.
 * @return true when the module is well formed.
 */
bool verifyModule(const Module &m, DiagEngine &diags);

/** Verifies a single function. */
bool verifyFunction(const Function &f, DiagEngine &diags);

} // namespace conair::ir
