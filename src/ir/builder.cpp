#include "ir/builder.h"

#include "support/diag.h"

namespace conair::ir {

Instruction *
IRBuilder::emit(std::unique_ptr<Instruction> inst)
{
    if (!block_)
        fatal("IRBuilder: no insertion point");
    inst->setLoc(loc_);
    if (before_)
        return block_->insertBefore(before_, std::move(inst));
    return block_->append(std::move(inst));
}

Instruction *
IRBuilder::alloca_(int64_t cells)
{
    auto inst = std::make_unique<Instruction>(Opcode::Alloca, Type::Ptr);
    inst->setAllocaSize(cells);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::load(Type t, Value *ptr)
{
    auto inst = std::make_unique<Instruction>(Opcode::Load, t);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::store(Value *v, Value *ptr)
{
    auto inst = std::make_unique<Instruction>(Opcode::Store, Type::Void);
    inst->addOperand(v);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::ptrAdd(Value *ptr, Value *offset)
{
    auto inst = std::make_unique<Instruction>(Opcode::PtrAdd, Type::Ptr);
    inst->addOperand(ptr);
    inst->addOperand(offset);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::binop(Opcode op, Value *lhs, Value *rhs)
{
    Type t = (op >= Opcode::FAdd && op <= Opcode::FDiv) ? Type::F64
                                                        : Type::I64;
    auto inst = std::make_unique<Instruction>(op, t);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::cmp(Opcode op, Value *lhs, Value *rhs)
{
    auto inst = std::make_unique<Instruction>(op, Type::I1);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::siToFp(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::SiToFp, Type::F64);
    inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::fpToSi(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::FpToSi, Type::I64);
    inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::zext(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::Zext, Type::I64);
    inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::br(BasicBlock *target)
{
    auto inst = std::make_unique<Instruction>(Opcode::Br, Type::Void);
    inst->addBlockOp(target);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::condBr(Value *cond, BasicBlock *t, BasicBlock *f)
{
    auto inst = std::make_unique<Instruction>(Opcode::CondBr, Type::Void);
    inst->addOperand(cond);
    inst->addBlockOp(t);
    inst->addBlockOp(f);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::ret(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::Ret, Type::Void);
    if (v)
        inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::unreachable()
{
    return emit(
        std::make_unique<Instruction>(Opcode::Unreachable, Type::Void));
}

Instruction *
IRBuilder::phi(Type t)
{
    return emit(std::make_unique<Instruction>(Opcode::Phi, t));
}

Instruction *
IRBuilder::call(Function *callee, const std::vector<Value *> &args)
{
    auto inst =
        std::make_unique<Instruction>(Opcode::Call, callee->returnType());
    inst->setCallee(callee);
    for (Value *a : args)
        inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::callBuiltin(Builtin b, const std::vector<Value *> &args)
{
    auto inst =
        std::make_unique<Instruction>(Opcode::Call, builtinResultType(b));
    inst->setBuiltin(b);
    for (Value *a : args)
        inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::schedHint(uint64_t id)
{
    auto inst = std::make_unique<Instruction>(Opcode::SchedHint, Type::Void);
    inst->setHintId(id);
    return emit(std::move(inst));
}

} // namespace conair::ir
