#include "explore/telemetry.h"

#include <algorithm>

#include "explore/campaign.h"
#include "support/json.h"
#include "support/str.h"

namespace conair::explore {

namespace {

/** Growth-curve cap: beyond it every other sample is dropped, so the
 *  curve stays a bounded sketch however long the campaign runs. */
constexpr size_t kMaxGrowthSamples = 512;

} // namespace

void
CampaignTelemetry::beginCampaign(uint64_t totalJobs, unsigned workers)
{
    total_.store(totalJobs, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    failures_.store(0, std::memory_order_relaxed);
    workerCount_ = std::max(1u, workers);
    workers_ = std::make_unique<WorkerCell[]>(workerCount_);
    start_ = std::chrono::steady_clock::now();
}

void
CampaignTelemetry::noteSchedule(unsigned worker,
                                const std::string &target,
                                const ScheduleOutcome &o)
{
    uint64_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (worker < workerCount_ && workers_)
        workers_[worker].schedules.fetch_add(
            1, std::memory_order_relaxed);
    if (o.ran && !o.unhardenedCorrect && !o.unhardenedInconclusive)
        failures_.fetch_add(1, std::memory_order_relaxed);

    uint64_t novel = coverage_.insertAll(o.coverage);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!o.metrics.empty())
        metrics_.merge(o.metrics);
    if (o.hasProfile) {
        const std::string policy =
            policyLabel(o.spec.policy, o.spec.depth);
        profiles_[target + "/" + policy].merge(o.profile);
        auto span = [&](const char *leg, uint64_t us, bool ran) {
            if (!ran)
                return;
            obs::prof::WallCell &c =
                wall_[target + ";" + policy + ";" + leg];
            c.kernel = target;
            c.policy = policy;
            c.leg = leg;
            c.micros += us;
            ++c.spans;
        };
        span("unhardened", o.wallUnhardenedUs, true);
        span("differential", o.wallDifferentialUs, true);
        span("hardened", o.wallHardenedUs, true);
        span("hardened_diff", o.wallHardenedDiffUs,
             !o.chaos && !o.diverged);
    }
    if (novel > 0) {
        growth_.emplace_back(done, coverage_.distinctEdges());
        if (growth_.size() > kMaxGrowthSamples) {
            // Thin by two, keeping the newest point exact.
            std::vector<std::pair<uint64_t, uint64_t>> kept;
            kept.reserve(growth_.size() / 2 + 1);
            for (size_t i = 0; i < growth_.size(); i += 2)
                kept.push_back(growth_[i]);
            if (kept.back() != growth_.back())
                kept.push_back(growth_.back());
            growth_.swap(kept);
        }
    }
}

void
CampaignTelemetry::noteCorpusSize(uint64_t n)
{
    corpus_.store(n, std::memory_order_relaxed);
}

void
CampaignTelemetry::addGuided(uint64_t corpusEntries,
                             uint64_t mutationsTried,
                             uint64_t mutationsNovel,
                             uint64_t freshTried, uint64_t freshNovel)
{
    guidedCorpus_.fetch_add(corpusEntries, std::memory_order_relaxed);
    guidedMutTried_.fetch_add(mutationsTried,
                              std::memory_order_relaxed);
    guidedMutNovel_.fetch_add(mutationsNovel,
                              std::memory_order_relaxed);
    guidedFreshTried_.fetch_add(freshTried, std::memory_order_relaxed);
    guidedFreshNovel_.fetch_add(freshNovel, std::memory_order_relaxed);
}

uint64_t
CampaignTelemetry::schedulesDone() const
{
    return done_.load(std::memory_order_relaxed);
}

uint64_t
CampaignTelemetry::failuresFound() const
{
    return failures_.load(std::memory_order_relaxed);
}

std::string
CampaignTelemetry::statusJson() const
{
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    uint64_t done = done_.load(std::memory_order_relaxed);

    JsonWriter w(2);
    w.beginObject();
    w.key("campaign").beginObject();
    w.key("schedules_done").value(done);
    w.key("schedules_total")
        .value(total_.load(std::memory_order_relaxed));
    w.key("failures_found")
        .value(failures_.load(std::memory_order_relaxed));
    w.key("corpus_size").value(corpus_.load(std::memory_order_relaxed));
    w.key("elapsed_seconds").value(elapsed, "%.3f");
    w.key("schedules_per_sec")
        .value(elapsed > 0 ? double(done) / elapsed : 0.0, "%.1f");
    w.key("workers").beginArray();
    for (unsigned i = 0; i < workerCount_; ++i) {
        uint64_t n =
            workers_ ? workers_[i].schedules.load(
                           std::memory_order_relaxed)
                     : 0;
        w.beginObject();
        w.key("worker").value(uint64_t(i));
        w.key("schedules").value(n);
        w.key("schedules_per_sec")
            .value(elapsed > 0 ? double(n) / elapsed : 0.0, "%.1f");
        w.endObject();
    }
    w.endArray();
    w.endObject();

    {
        // Guided-search progress: corpus size and mutation yield
        // (novel mutated schedules / mutated schedules tried).
        uint64_t mutTried =
            guidedMutTried_.load(std::memory_order_relaxed);
        uint64_t mutNovel =
            guidedMutNovel_.load(std::memory_order_relaxed);
        w.key("guided").beginObject();
        w.key("corpus_entries")
            .value(guidedCorpus_.load(std::memory_order_relaxed));
        w.key("mutations_tried").value(mutTried);
        w.key("mutations_novel").value(mutNovel);
        w.key("fresh_tried")
            .value(guidedFreshTried_.load(std::memory_order_relaxed));
        w.key("fresh_novel")
            .value(guidedFreshNovel_.load(std::memory_order_relaxed));
        w.key("mutation_yield")
            .value(mutTried ? double(mutNovel) / double(mutTried) : 0.0,
                   "%.4f");
        w.endObject();
    }

    w.key("coverage").beginObject();
    w.key("distinct_edges").value(coverage_.distinctEdges());
    w.key("dropped_edges").value(coverage_.dropped());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        w.key("growth").beginArray();
        for (const auto &[sched, edges] : growth_) {
            w.beginArray();
            w.value(sched);
            w.value(edges);
            w.endArray();
        }
        w.endArray();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
CampaignTelemetry::coverageJson() const
{
    std::vector<obs::cov::Edge> edges = coverage_.snapshot();
    JsonWriter w(2);
    w.beginObject();
    w.key("distinct_edges").value(uint64_t(edges.size()));
    w.key("dropped_edges").value(coverage_.dropped());
    w.key("digest").value(
        strfmt("%016llx",
               (unsigned long long)obs::cov::coverageDigest(edges)));
    w.key("edges").beginArray();
    for (const obs::cov::Edge &e : edges) {
        w.beginObject();
        w.key("key").value(
            strfmt("%016llx", (unsigned long long)e.key));
        w.key("kind").value(obs::cov::edgeKindName(e.kind));
        w.key("from").value(
            strfmt("%016llx", (unsigned long long)e.from));
        w.key("to").value(strfmt("%016llx", (unsigned long long)e.to));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
CampaignTelemetry::profileJson() const
{
    obs::prof::ProfileDoc doc;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[group, agg] : profiles_)
            doc.phaseGroups.emplace_back(group, agg);
        for (const auto &[key, cell] : wall_)
            doc.wall.push_back(cell);
    }
    return obs::prof::speedscopeJson(doc, "campaign (live)");
}

std::string
CampaignTelemetry::prometheusText() const
{
    std::string out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = metrics_.toPrometheusText();
    }
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();

    auto gauge = [&out](const char *name, const char *help,
                        uint64_t v) {
        out += strfmt("# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", name,
                      help, name, name, (unsigned long long)v);
    };
    gauge("conair_campaign_schedules_total",
          "Schedules in the campaign matrix.",
          total_.load(std::memory_order_relaxed));
    gauge("conair_campaign_schedules_done",
          "Schedules finished so far.",
          done_.load(std::memory_order_relaxed));
    gauge("conair_campaign_failures_found",
          "Failing schedules discovered so far.",
          failures_.load(std::memory_order_relaxed));
    gauge("conair_campaign_corpus_size",
          "Minimised replay logs in the corpus.",
          corpus_.load(std::memory_order_relaxed));
    gauge("conair_guided_corpus_entries",
          "Mutation-corpus entries admitted by the guided search.",
          guidedCorpus_.load(std::memory_order_relaxed));
    gauge("conair_guided_mutations_tried",
          "Mutated schedules tried by the guided search.",
          guidedMutTried_.load(std::memory_order_relaxed));
    gauge("conair_guided_mutations_novel",
          "Mutated schedules that contributed novel coverage.",
          guidedMutNovel_.load(std::memory_order_relaxed));
    gauge("conair_guided_fresh_tried",
          "Fresh seed schedules tried by the guided search.",
          guidedFreshTried_.load(std::memory_order_relaxed));
    gauge("conair_guided_fresh_novel",
          "Fresh seed schedules that contributed novel coverage.",
          guidedFreshNovel_.load(std::memory_order_relaxed));
    gauge("conair_coverage_distinct_edges",
          "Distinct interleaving-coverage edges observed.",
          coverage_.distinctEdges());
    gauge("conair_coverage_dropped_edges",
          "Coverage edges lost to map overflow.",
          coverage_.dropped());
    out += strfmt("# HELP conair_campaign_elapsed_seconds Campaign "
                  "wall-clock time.\n"
                  "# TYPE conair_campaign_elapsed_seconds gauge\n"
                  "conair_campaign_elapsed_seconds %.3f\n",
                  elapsed);
    out += "# HELP conair_worker_schedules Schedules finished per "
           "worker.\n# TYPE conair_worker_schedules gauge\n";
    for (unsigned i = 0; i < workerCount_; ++i)
        out += strfmt(
            "conair_worker_schedules{worker=\"%u\"} %llu\n", i,
            (unsigned long long)(workers_ ? workers_[i].schedules.load(
                                                std::memory_order_relaxed)
                                          : 0));
    return out;
}

} // namespace conair::explore
