#include "explore/guided.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "explore/telemetry.h"
#include "support/str.h"

namespace conair::explore {

namespace {

using vm::SchedPolicy;

/** Same predicate the blind campaign aggregates with. */
bool
isFailing(const ScheduleOutcome &o)
{
    return o.ran && !o.unhardenedCorrect && !o.unhardenedInconclusive;
}

bool
takesPoints(SchedPolicy p)
{
    return p == SchedPolicy::Pct || p == SchedPolicy::PreemptBound;
}

/** Canonical points: sorted, duplicate-free (the token grammar wants
 *  strictly increasing), all >= 1. */
void
canonicalize(std::vector<uint64_t> &pts)
{
    for (uint64_t &p : pts)
        if (p == 0)
            p = 1;
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvBytes(uint64_t h, const char *p, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        h = (h ^ uint8_t(p[i])) * kFnvPrime;
    return h;
}

} // namespace

const char *
mutOpName(MutOp op)
{
    switch (op) {
      case MutOp::Nudge: return "nudge";
      case MutOp::Add: return "add";
      case MutOp::Drop: return "drop";
      case MutOp::DepthBump: return "depth";
      case MutOp::CrossPolicy: return "policy";
      case MutOp::NearAdd: return "near";
    }
    return "unknown";
}

bool
mutOpFromName(const std::string &name, MutOp &out)
{
    for (size_t i = 0; i < kMutOpCount; ++i)
        if (name == mutOpName(MutOp(i))) {
            out = MutOp(i);
            return true;
        }
    return false;
}

std::vector<uint64_t>
derivePoints(const ScheduleSpec &s, uint64_t horizon)
{
    if (!s.points.empty()) {
        std::vector<uint64_t> pts = s.points;
        std::sort(pts.begin(), pts.end());
        return pts;
    }
    if (!takesPoints(s.policy))
        return {};
    // Exact mirror of the Interp's sampling (src/vm/interp.cpp): the
    // split point stream, PCT's depth-1 / PreemptBound's depth draws,
    // 1 + range(horizon) each, then sorted.
    Rng pointRng(s.seed ^ 0x8f14f4e7c3a2c9b1ull);
    uint64_t n = s.policy == SchedPolicy::Pct
                     ? (s.depth > 0 ? s.depth - 1 : 0)
                     : s.depth;
    horizon = std::max<uint64_t>(horizon, 1);
    std::vector<uint64_t> pts;
    pts.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        pts.push_back(1 + pointRng.range(horizon));
    std::sort(pts.begin(), pts.end());
    return pts;
}

bool
mutateSpec(const CorpusEntry &e, MutOp op, uint64_t horizon,
           uint64_t nudgeMax, Rng &rng, ScheduleSpec &out)
{
    const ScheduleSpec &s = e.spec;
    if (!takesPoints(s.policy))
        return false;
    std::vector<uint64_t> pts =
        s.points.empty() ? derivePoints(s, horizon) : s.points;
    horizon = std::max<uint64_t>(horizon, 1);
    nudgeMax = std::max<uint64_t>(nudgeMax, 1);
    out = s;

    switch (op) {
      case MutOp::Nudge: {
        if (pts.empty())
            return false;
        size_t i = size_t(rng.range(pts.size()));
        uint64_t delta = 1 + rng.range(nudgeMax);
        bool up = rng.chance(1, 2);
        pts[i] = up ? pts[i] + delta
                    : (pts[i] > delta ? pts[i] - delta : 1);
        break;
      }
      case MutOp::Add: {
        pts.push_back(1 + rng.range(horizon));
        // PCT: one more point wants one more priority band; keeping
        // depth = points + 1 preserves the per-point drop structure.
        out.depth = s.depth + 1;
        break;
      }
      case MutOp::Drop: {
        if (pts.size() < 2)
            return false;
        pts.erase(pts.begin() + long(rng.range(pts.size())));
        out.depth = s.depth > 1 ? s.depth - 1 : 1;
        break;
      }
      case MutOp::DepthBump: {
        // Only PCT interprets the depth once points are pinned (it
        // shapes the priority bands each point drops into); for
        // PreemptBound the bound is the point list itself.
        if (s.policy != SchedPolicy::Pct)
            return false;
        out.depth = s.depth + 1;
        break;
      }
      case MutOp::CrossPolicy: {
        if (pts.empty())
            return false;
        if (s.policy == SchedPolicy::Pct) {
            out.policy = SchedPolicy::PreemptBound;
            out.depth = uint32_t(pts.size());
        } else {
            out.policy = SchedPolicy::Pct;
            out.depth = uint32_t(pts.size()) + 1;
        }
        break;
      }
      case MutOp::NearAdd: {
        // The two-window probe: a second preemption shortly after an
        // existing one.  Uniform adds sample this neighbourhood with
        // probability ~nudgeMax/horizon per try — too thin to find
        // double-window bugs (a partially-published flag observed by
        // a thread that is itself mid-publication).
        if (pts.empty())
            return false;
        uint64_t anchor = pts[size_t(rng.range(pts.size()))];
        uint64_t delta = 1 + rng.range(4 * nudgeMax);
        bool up = rng.chance(3, 4); // windows mostly open forward
        pts.push_back(up ? anchor + delta
                         : (anchor > delta ? anchor - delta : 1));
        out.depth = s.depth + 1; // same band growth as Add
        break;
      }
    }

    canonicalize(pts);
    if (pts.empty())
        return false;
    out.points = std::move(pts);
    return true;
}

//
// Corpus serialisation — same strictness contract as the replay log.
//

uint64_t
Corpus::totalEnergy() const
{
    uint64_t total = 0;
    for (const CorpusEntry &e : entries)
        total += std::max<uint64_t>(e.energy(), 1);
    return total;
}

std::string
Corpus::serialize() const
{
    std::string out = "conair-corpus v1\n";
    out += "program " + (program.empty() ? "-" : program) + "\n";
    out += strfmt("entries %llu\n", (unsigned long long)entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
        const CorpusEntry &e = entries[i];
        out += strfmt("entry %llu\n", (unsigned long long)i);
        out += "token " + e.spec.token() + "\n";
        out += strfmt("ordinal %llu\n", (unsigned long long)e.ordinal);
        out += strfmt("racy %llu\n", (unsigned long long)e.racy);
        out += "op " + e.op + "\n";
        out += "parent " + (e.parent.empty() ? "-" : e.parent) + "\n";
        out += strfmt("edges %llu",
                      (unsigned long long)e.novelEdges.size());
        for (uint64_t k : e.novelEdges)
            out += strfmt(" %016llx", (unsigned long long)k);
        out += "\n";
    }
    out += "end\n";
    return out;
}

uint64_t
Corpus::digest() const
{
    // Skip the program header so corpora of renamed targets with the
    // same search compare equal; everything else is covered.
    std::string text = serialize();
    size_t firstNl = text.find('\n');
    size_t secondNl = text.find('\n', firstNl + 1);
    uint64_t h = fnvBytes(kFnvOffset, text.data(), firstNl + 1);
    return fnvBytes(h, text.data() + secondNl + 1,
                    text.size() - secondNl - 1);
}

namespace {

struct LineReader
{
    std::istringstream is;
    size_t lineNo = 0;
    std::string line;

    explicit LineReader(const std::string &text) : is(text) {}

    bool
    next()
    {
        if (!std::getline(is, line))
            return false;
        ++lineNo;
        return true;
    }
};

bool
parseU64Strict(const std::string &s, uint64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        uint64_t d = uint64_t(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

bool
parseHex64Strict(const std::string &s, uint64_t &out)
{
    if (s.size() != 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        uint64_t d;
        if (c >= '0' && c <= '9')
            d = uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = uint64_t(c - 'a') + 10;
        else
            return false;
        v = (v << 4) | d;
    }
    out = v;
    return true;
}

/** Splits on single spaces; empty items (doubled spaces, leading /
 *  trailing space) make the line malformed. */
bool
splitFields(const std::string &line, std::vector<std::string> &out)
{
    out.clear();
    size_t start = 0;
    while (start <= line.size()) {
        size_t sp = line.find(' ', start);
        size_t end = sp == std::string::npos ? line.size() : sp;
        if (end == start)
            return false;
        out.push_back(line.substr(start, end - start));
        if (sp == std::string::npos)
            break;
        start = sp + 1;
    }
    return !out.empty();
}

} // namespace

bool
parseCorpus(const std::string &text, Corpus &out, std::string &err)
{
    out = Corpus{};
    LineReader r(text);

    auto fail = [&](const std::string &msg) {
        err = strfmt("corpus line %llu: %s",
                     (unsigned long long)r.lineNo, msg.c_str());
        return false;
    };

    if (!r.next())
        return fail("missing header");
    if (r.line != "conair-corpus v1") {
        if (r.line.rfind("conair-corpus ", 0) == 0)
            return fail(strfmt("unsupported version '%s' (want v1)",
                               r.line.substr(14).c_str()));
        return fail("not a conair corpus (bad header)");
    }

    std::vector<std::string> f;

    if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
        f[0] != "program")
        return fail("expected 'program <name>'");
    out.program = f[1] == "-" ? "" : f[1];

    uint64_t count = 0;
    if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
        f[0] != "entries" || !parseU64Strict(f[1], count))
        return fail("expected 'entries <count>'");

    out.entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        CorpusEntry e;

        uint64_t idx = 0;
        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "entry" || !parseU64Strict(f[1], idx))
            return fail(strfmt("expected 'entry %llu'",
                               (unsigned long long)i));
        if (idx != i)
            return fail(strfmt("entry index %llu out of order "
                               "(expected %llu)",
                               (unsigned long long)idx,
                               (unsigned long long)i));

        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "token")
            return fail("expected 'token <schedule>'");
        std::string tokErr;
        if (!parseScheduleToken(f[1], e.spec, tokErr))
            return fail("bad schedule token: " + tokErr);

        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "ordinal" || !parseU64Strict(f[1], e.ordinal))
            return fail("expected 'ordinal <n>'");
        if (e.ordinal == 0)
            return fail("ordinal must be >= 1");

        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "racy" || !parseU64Strict(f[1], e.racy))
            return fail("expected 'racy <n>'");

        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "op")
            return fail("expected 'op <name>'");
        MutOp op;
        if (f[1] != "fresh" && !mutOpFromName(f[1], op))
            return fail("unknown mutation operator '" + f[1] + "'");
        e.op = f[1];

        if (!r.next() || !splitFields(r.line, f) || f.size() != 2 ||
            f[0] != "parent")
            return fail("expected 'parent <token|->'");
        if (f[1] != "-") {
            ScheduleSpec parentSpec;
            if (!parseScheduleToken(f[1], parentSpec, tokErr))
                return fail("bad parent token: " + tokErr);
            e.parent = f[1];
        }

        uint64_t edgeCount = 0;
        if (!r.next() || !splitFields(r.line, f) || f.size() < 2 ||
            f[0] != "edges" || !parseU64Strict(f[1], edgeCount))
            return fail("expected 'edges <count> <key>...'");
        if (f.size() != 2 + edgeCount)
            return fail(strfmt("edge count %llu does not match %llu "
                               "keys on the line",
                               (unsigned long long)edgeCount,
                               (unsigned long long)(f.size() - 2)));
        e.novelEdges.reserve(edgeCount);
        for (uint64_t k = 0; k < edgeCount; ++k) {
            uint64_t key = 0;
            if (!parseHex64Strict(f[2 + k], key))
                return fail("bad edge key '" + f[2 + k] +
                            "' (want 16 lowercase hex digits)");
            if (!e.novelEdges.empty() && key <= e.novelEdges.back())
                return fail("edge keys must be strictly increasing");
            e.novelEdges.push_back(key);
        }

        out.entries.push_back(std::move(e));
    }

    if (!r.next() || r.line != "end")
        return fail("expected 'end'");
    if (r.next())
        return fail("trailing content after 'end'");

    err.clear();
    return true;
}

bool
loadCorpus(const std::string &path, Corpus &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open corpus file: " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseCorpus(ss.str(), out, err);
}

bool
saveCorpus(const std::string &path, const Corpus &c, std::string &err)
{
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    if (!outf) {
        err = "cannot write corpus file: " + path;
        return false;
    }
    outf << c.serialize();
    outf.flush();
    if (!outf) {
        err = "short write to corpus file: " + path;
        return false;
    }
    err.clear();
    return true;
}

//
// The guided driver.
//

namespace {

/** One generated-but-not-yet-run schedule of a batch. */
struct GenSchedule
{
    ScheduleSpec spec;
    bool fresh = true;
    MutOp op = MutOp::Nudge; ///< meaningful when !fresh
    std::string parent;      ///< parent entry token when !fresh
};

/** Energy-weighted corpus pick (total > 0, corpus non-empty). */
const CorpusEntry &
pickParent(const Corpus &corpus, uint64_t total, Rng &rng)
{
    uint64_t roll = rng.range(total);
    for (const CorpusEntry &e : corpus.entries) {
        uint64_t w = std::max<uint64_t>(e.energy(), 1);
        if (roll < w)
            return e;
        roll -= w;
    }
    return corpus.entries.back();
}

} // namespace

GuidedResult
runGuided(const Target &t, const CampaignOptions &opts,
          const GuidedOptions &g)
{
    GuidedResult r;
    r.corpus.program = t.name;

    // The driver *is* the coverage consumer: force the fold on and
    // disable the blind campaign's early-stop (the guided stop rule is
    // stopAtFirstFailure).
    CampaignOptions ropts = opts;
    ropts.collectCoverage = true;
    ropts.stopAfterFailures = 0;

    std::set<uint64_t> covKeys; // sorted for the final digest
    std::unordered_set<std::string> tried;

    uint64_t nextFreshSeed = 1;
    uint64_t nextProbeSeed = 1;
    uint64_t freshGenerated = 0;
    uint64_t round = 0;
    unsigned workers = std::max(1u, opts.workers);
    unsigned batchSize = std::max(1u, g.batch);

    // Telemetry deltas are published per batch (the campaign-wide
    // guided counters accumulate across targets).
    uint64_t pubCorpus = 0, pubMutTried = 0, pubMutNovel = 0;
    uint64_t pubFreshTried = 0, pubFreshNovel = 0;

    bool stop = g.budget == 0;
    while (!stop && r.schedules < g.budget) {
        ++round;
        // Per-round stream: generation depends only on (mutationSeed,
        // round, corpus state) — never on worker timing.
        Rng rng(g.mutationSeed ^ (0x9e3779b97f4a7c15ull * round));

        uint64_t want = std::min<uint64_t>(batchSize,
                                           g.budget - r.schedules);
        std::vector<GenSchedule> batch;
        batch.reserve(want);
        for (uint64_t slot = 0; slot < want; ++slot) {
            GenSchedule gen;
            bool mutate =
                !r.corpus.entries.empty() && rng.chance(2, 3);
            if (mutate) {
                gen.fresh = true; // falls back to fresh if no luck
                uint64_t total = r.corpus.totalEnergy();
                for (int attempt = 0; attempt < 8; ++attempt) {
                    const CorpusEntry &parent =
                        pickParent(r.corpus, total, rng);
                    MutOp op = MutOp(rng.range(kMutOpCount));
                    ScheduleSpec mutated;
                    if (!mutateSpec(parent, op, t.horizon, g.nudgeMax,
                                    rng, mutated))
                        continue;
                    if (!tried.insert(mutated.token()).second)
                        continue; // already explored this schedule
                    gen.spec = mutated;
                    gen.fresh = false;
                    gen.op = op;
                    gen.parent = parent.spec.token();
                    break;
                }
            }
            if (gen.fresh) {
                // Fresh stream: base-policy seeds alternating with
                // Random-policy probes (see GuidedOptions::
                // randomProbes) — the parity of the fresh *counter*,
                // not the slot, keeps the interleave deterministic
                // across batch boundaries.
                bool probe =
                    g.randomProbes && (freshGenerated % 2 == 1);
                ++freshGenerated;
                if (probe) {
                    gen.spec.policy = SchedPolicy::Random;
                    gen.spec.depth = 0;
                    gen.spec.seed = nextProbeSeed++;
                } else {
                    gen.spec.policy = g.basePolicy;
                    gen.spec.depth = g.baseDepth;
                    gen.spec.seed = nextFreshSeed++;
                }
                tried.insert(gen.spec.token());
            }
            batch.push_back(std::move(gen));
        }

        // Run the batch on the worker pool.  Workers only execute;
        // everything stateful happens in the batch-order fold below.
        std::vector<ScheduleOutcome> outs(batch.size());
        std::atomic<size_t> next{0};
        auto work = [&](unsigned worker) {
            for (;;) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= batch.size())
                    return;
                outs[i] = runOneSchedule(t, batch[i].spec, ropts);
                if (opts.telemetry)
                    opts.telemetry->noteSchedule(worker, t.name,
                                                 outs[i]);
            }
        };
        if (workers == 1 || batch.size() <= 1) {
            work(0);
        } else {
            std::vector<std::thread> pool;
            unsigned n = unsigned(
                std::min<size_t>(workers, batch.size()));
            pool.reserve(n);
            for (unsigned w = 0; w < n; ++w)
                pool.emplace_back(work, w);
            for (auto &th : pool)
                th.join();
        }

        // Fold in batch order.
        for (size_t i = 0; i < batch.size(); ++i) {
            const GenSchedule &gen = batch[i];
            const ScheduleOutcome &o = outs[i];

            ++r.schedules;
            if (gen.fresh) {
                ++r.freshSchedules;
                ++pubFreshTried;
            } else {
                ++r.mutatedSchedules;
                ++r.perOp[size_t(gen.op)];
                ++pubMutTried;
            }

            r.divergences += o.diverged;
            if (o.hardenedRan && !o.hardenedInconclusive &&
                !o.hardenedCorrect && t.mustRecover)
                ++r.unrecovered;

            std::vector<uint64_t> novel;
            uint64_t novelRacy = 0;
            for (const obs::cov::Edge &e : o.coverage)
                if (covKeys.insert(e.key).second) {
                    novel.push_back(e.key); // stays sorted: o.coverage is
                    novelRacy += e.kind == obs::cov::EdgeKind::RacyPair;
                }

            // Random probes cannot be admitted: there are no change
            // points to pin or mutate.  Their novel edges stay in the
            // coverage set (deduplicating future admissions), which
            // keeps corpus energy honest — edges only reachable at
            // instruction granularity never inflate a point
            // schedule's weight.
            if (!novel.empty() && takesPoints(gen.spec.policy)) {
                if (gen.fresh) {
                    ++r.freshNovel;
                    ++pubFreshNovel;
                } else {
                    ++r.mutationNovel;
                    ++r.perOpNovel[size_t(gen.op)];
                    ++pubMutNovel;
                }
                CorpusEntry ce;
                ce.spec = gen.spec;
                if (ce.spec.points.empty())
                    ce.spec.points = derivePoints(ce.spec, t.horizon);
                ce.novelEdges = std::move(novel);
                ce.racy = novelRacy;
                ce.ordinal = r.schedules;
                ce.op = gen.fresh ? "fresh" : mutOpName(gen.op);
                ce.parent = gen.parent;
                r.corpus.entries.push_back(std::move(ce));
                ++pubCorpus;
            }

            if (isFailing(o) && !r.foundFailure) {
                r.foundFailure = true;
                r.firstFailure = gen.spec;
                r.seedsToFirstFailure = r.schedules;
                r.firstFailureTag = o.unhardenedTag;
                if (g.stopAtFirstFailure) {
                    stop = true;
                    break; // later batch slots stay unfolded
                }
            }
        }

        if (opts.telemetry) {
            opts.telemetry->addGuided(pubCorpus, pubMutTried,
                                      pubMutNovel, pubFreshTried,
                                      pubFreshNovel);
            pubCorpus = pubMutTried = pubMutNovel = 0;
            pubFreshTried = pubFreshNovel = 0;
        }
    }

    r.distinctEdges = covKeys.size();
    r.coverageDigest = obs::cov::coverageDigest(
        std::vector<uint64_t>(covKeys.begin(), covKeys.end()));
    return r;
}

} // namespace conair::explore
