#include "explore/campaign.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <thread>

#include "explore/guided.h"
#include "explore/telemetry.h"
#include "ir/module.h"
#include "obs/replay/minimize.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "support/str.h"
#include "vm/interp.h"

namespace conair::explore {

//
// ScheduleSpec.
//

void
ScheduleSpec::applyTo(vm::VmConfig &cfg) const
{
    cfg.policy = policy;
    cfg.seed = seed;
    cfg.schedPoints = points;
    if (policy == vm::SchedPolicy::Pct)
        cfg.pctDepth = std::max<uint32_t>(depth, 1);
    else if (policy == vm::SchedPolicy::PreemptBound)
        cfg.preemptBound = depth;
}

std::string
ScheduleSpec::token() const
{
    const char *name = vm::schedPolicyName(policy);
    if (policy == vm::SchedPolicy::Pct ||
        policy == vm::SchedPolicy::PreemptBound) {
        std::string t = strfmt("%s:d%u:s%llu", name, depth,
                               (unsigned long long)seed);
        if (!points.empty()) {
            t += ":c";
            for (size_t i = 0; i < points.size(); ++i)
                t += strfmt("%s%llu", i ? "," : "",
                            (unsigned long long)points[i]);
        }
        return t;
    }
    return strfmt("%s:s%llu", name, (unsigned long long)seed);
}

namespace {

/** Strict digits-only u64 parse: no sign, no whitespace, no trailing
 *  junk, and overflow is an error — a mistyped seed must never wrap
 *  into a silently different schedule. */
bool
parseTokenNumber(const std::string &s, uint64_t &out)
{
    if (s.empty() || s[0] < '0' || s[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

bool
parseScheduleToken(const std::string &tok, ScheduleSpec &out,
                   std::string &err)
{
    auto fail = [&](const std::string &what) {
        err = "bad schedule token '" + tok + "': " + what;
        return false;
    };

    std::vector<std::string> parts;
    std::string cur;
    for (char c : tok + ":") {
        if (c == ':') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }

    ScheduleSpec s;
    if (!vm::schedPolicyFromName(parts[0], s.policy))
        return fail("unknown policy '" + parts[0] +
                    "' (want rr, random, pct, or pb)");

    s.depth = 0;
    bool sawSeed = false, sawDepth = false, sawPoints = false;
    for (size_t next = 1; next < parts.size(); ++next) {
        const std::string &p = parts[next];
        if (p.size() < 2 || (p[0] != 'd' && p[0] != 's' && p[0] != 'c'))
            return fail("field '" + p + "' is not dN, sN, or cN,N");
        if (p[0] == 'c') {
            if (sawPoints)
                return fail("duplicate points field '" + p + "'");
            if (s.policy != vm::SchedPolicy::Pct &&
                s.policy != vm::SchedPolicy::PreemptBound)
                return fail(
                    std::string(vm::schedPolicyName(s.policy)) +
                    " does not take explicit change points (c field)");
            // Split the comma list ourselves so empty items ("c1,,2")
            // fail in parseTokenNumber instead of being skipped.
            std::string item;
            std::vector<uint64_t> pts;
            for (char ch : p.substr(1) + ",") {
                if (ch != ',') {
                    item += ch;
                    continue;
                }
                uint64_t v;
                if (!parseTokenNumber(item, v) || v == 0)
                    return fail("change point '" + item +
                                "' is not a valid tick (digits only, "
                                ">= 1, no overflow)");
                if (!pts.empty() && v <= pts.back())
                    return fail("change points not strictly "
                                "increasing at '" + item + "'");
                pts.push_back(v);
                item.clear();
            }
            s.points = std::move(pts);
            sawPoints = true;
            continue;
        }
        uint64_t v;
        if (!parseTokenNumber(p.substr(1), v))
            return fail("field '" + p +
                        "' is not a valid number (digits only, no "
                        "overflow)");
        if (p[0] == 'd') {
            if (sawDepth)
                return fail("duplicate depth field '" + p + "'");
            if (v > UINT32_MAX)
                return fail("depth " + p.substr(1) + " out of range");
            s.depth = uint32_t(v);
            sawDepth = true;
        } else {
            if (sawSeed)
                return fail("duplicate seed field '" + p + "'");
            s.seed = v;
            sawSeed = true;
        }
    }
    if (!sawSeed)
        return fail("missing seed field sN");
    if ((s.policy == vm::SchedPolicy::Pct ||
         s.policy == vm::SchedPolicy::PreemptBound) &&
        s.depth == 0)
        return fail(std::string(vm::schedPolicyName(s.policy)) +
                    " needs a depth field dN >= 1");
    out = s;
    err.clear();
    return true;
}

bool
parseScheduleToken(const std::string &tok, ScheduleSpec &out)
{
    std::string err;
    return parseScheduleToken(tok, out, err);
}

std::string
reproCommand(const std::string &app, const ScheduleSpec &s)
{
    return "./build/bench/bench_explore --repro " + app + " " +
           s.token();
}

std::string
policyLabel(vm::SchedPolicy policy, uint32_t depth)
{
    const char *name = vm::schedPolicyName(policy);
    if (policy == vm::SchedPolicy::Pct ||
        policy == vm::SchedPolicy::PreemptBound)
        return strfmt("%s:d%u", name, depth);
    return name;
}

//
// One schedule, all legs.
//

namespace {

bool
correctRun(const Target &t, const vm::RunResult &r)
{
    if (r.outcome != vm::Outcome::Success)
        return false;
    if (!t.checkOutput)
        return true;
    return r.output == t.expectedOutput && r.exitCode == t.expectedExit;
}

/** Oracle 3: the two engines must agree on every observable of the
 *  run, down to the virtual clock tick. */
std::string
tickDiff(const vm::RunResult &a, const vm::RunResult &b)
{
    if (a.outcome != b.outcome)
        return strfmt("outcome %s vs %s", vm::outcomeName(a.outcome),
                      vm::outcomeName(b.outcome));
    if (a.clock != b.clock)
        return strfmt("clock %llu vs %llu",
                      (unsigned long long)a.clock,
                      (unsigned long long)b.clock);
    if (a.stats.steps != b.stats.steps)
        return strfmt("steps %llu vs %llu",
                      (unsigned long long)a.stats.steps,
                      (unsigned long long)b.stats.steps);
    if (a.output != b.output)
        return "output differs";
    if (a.exitCode != b.exitCode)
        return strfmt("exit %lld vs %lld", (long long)a.exitCode,
                      (long long)b.exitCode);
    if (a.failureTag != b.failureTag)
        return "failure tag differs";
    if (a.memDigest != b.memDigest)
        return "final memory digest differs";
    return {};
}

/** The exact VmConfig a campaign cell runs under.  The replay-corpus
 *  pass snapshots this same config into the recorded log, so replays
 *  reconstruct the run from the log alone — keep the two in sync by
 *  construction. */
vm::VmConfig
makeBaseConfig(const Target &t, const ScheduleSpec &s,
               const CampaignOptions &opts)
{
    vm::VmConfig base;
    s.applyTo(base);
    base.pctHorizon = t.horizon;
    base.quantum = t.quantum;
    base.maxSteps = opts.maxSteps;
    base.maxRetries = opts.maxRetries;
    // No DelayRules: the campaign's whole point is finding the buggy
    // interleavings without the hand-scripted trigger sleeps.
    return base;
}

} // namespace

uint64_t
calibrateHorizon(const ir::Module &m, uint64_t maxSteps)
{
    vm::VmConfig cfg;
    cfg.policy = vm::SchedPolicy::RoundRobin;
    cfg.quantum = 1'000;
    cfg.maxSteps = maxSteps;
    vm::RunResult r = vm::runProgram(m, cfg);
    return std::max<uint64_t>(r.stats.schedTicks, 64);
}

ScheduleOutcome
runOneSchedule(const Target &t, const ScheduleSpec &s,
               const CampaignOptions &opts,
               const ScheduleInstruments *ins)
{
    ScheduleOutcome out;
    out.spec = s;
    out.ran = true;

    // Wall-clock leg spans (profiling only): pure observation of this
    // process, never fed back into any deterministic field.
    using WallClock = std::chrono::steady_clock;
    WallClock::time_point legStart;
    auto legBegin = [&] {
        if (opts.collectProfile)
            legStart = WallClock::now();
    };
    auto legEnd = [&](uint64_t &us) {
        if (opts.collectProfile)
            us += uint64_t(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    WallClock::now() - legStart)
                    .count());
    };

    vm::VmConfig base = makeBaseConfig(t, s, opts);

    vm::VmConfig plainCfg = base;
    if (ins) {
        plainCfg.recorder = ins->unhardened;
        plainCfg.recordSharedAccesses = ins->recordSharedAccesses;
    }
    // Coverage rides on a private ring recorder when the caller didn't
    // attach one of its own, in diagnosis recording mode: shared
    // loads/stores are the interleaving sites (lock-free kernels emit
    // nothing else between switches).  The Reference/Fused replicas
    // below run bare either way, so their tick identity against this
    // leg keeps proving — on every single schedule — that recording
    // (and hence coverage collection) is passive.
    std::optional<obs::FlightRecorder> covRec;
    if (opts.collectCoverage && !plainCfg.recorder) {
        covRec.emplace(8192);
        plainCfg.recorder = &*covRec;
        plainCfg.recordSharedAccesses = true;
    }
    legBegin();
    vm::RunResult u = vm::runProgram(*t.plain, plainCfg);
    legEnd(out.wallUnhardenedUs);
    if (opts.collectCoverage && plainCfg.recorder)
        out.coverage =
            obs::cov::foldCoverage(*plainCfg.recorder).edges;
    out.unhardened = u.outcome;
    out.unhardenedCorrect = correctRun(t, u);
    out.unhardenedInconclusive = u.outcome == vm::Outcome::Timeout;
    out.unhardenedTag = u.failureTag;
    out.steps = u.stats.steps;

    if (opts.differential) {
        vm::VmConfig refCfg = base;
        refCfg.engine = vm::ExecEngine::Reference;
        legBegin();
        vm::RunResult r = vm::runProgram(*t.plain, refCfg);
        legEnd(out.wallDifferentialUs);
        std::string d = tickDiff(u, r);
        if (!d.empty()) {
            out.diverged = true;
            out.divergenceMsg = "unhardened: " + d;
        }
    }
    if (opts.fusedDifferential && !out.diverged) {
        vm::VmConfig fusedCfg = base;
        fusedCfg.engine = vm::ExecEngine::Fused;
        legBegin();
        vm::RunResult r = vm::runProgram(*t.plain, fusedCfg);
        legEnd(out.wallDifferentialUs);
        std::string d = tickDiff(u, r);
        if (!d.empty()) {
            out.diverged = true;
            out.divergenceMsg = "unhardened-fused: " + d;
        }
    }

    if (t.hardened) {
        out.hardenedRan = true;
        vm::VmConfig hardCfg = base;
        out.chaos = opts.chaosEveryN > 0 && s.seed % 2 == 0;
        if (out.chaos)
            hardCfg.chaosRollbackEveryN = opts.chaosEveryN;
        if (ins) {
            hardCfg.recorder = ins->hardened;
            hardCfg.recordSharedAccesses = ins->recordSharedAccesses;
        }
        if (opts.collectMetrics)
            hardCfg.metrics = &out.metrics;
        // The profiler rides the instrumented Decoded leg only; the
        // bare differential replicas below prove on every schedule
        // that attaching it never perturbed the run.
        std::optional<obs::prof::PhaseProfiler> prof;
        if (opts.collectProfile) {
            prof.emplace();
            hardCfg.profiler = &*prof;
        }
        legBegin();
        vm::RunResult h = vm::runProgram(*t.hardened, hardCfg);
        legEnd(out.wallHardenedUs);
        if (prof) {
            out.profile.add(*prof);
            out.hasProfile = true;
        }
        out.hardened = h.outcome;
        out.hardenedCorrect = correctRun(t, h);
        out.hardenedInconclusive = h.outcome == vm::Outcome::Timeout;
        out.chaosRollbacks = h.stats.chaosRollbacks;
        out.hardenedRollbacks = h.stats.rollbacks;
        out.hardenedCheckpoints = h.stats.checkpointsExecuted;
        out.hardenedStats = h.stats;

        if (opts.differential && !out.chaos && !out.diverged) {
            vm::VmConfig refCfg = hardCfg;
            refCfg.engine = vm::ExecEngine::Reference;
            // The differential replica always runs bare: tick identity
            // against the instrumented leg proves recording is passive
            // (diagnosis mode included).
            refCfg.recorder = nullptr;
            refCfg.metrics = nullptr;
            refCfg.profiler = nullptr;
            refCfg.recordSharedAccesses = false;
            legBegin();
            vm::RunResult r = vm::runProgram(*t.hardened, refCfg);
            legEnd(out.wallHardenedDiffUs);
            std::string d = tickDiff(h, r);
            if (!d.empty()) {
                out.diverged = true;
                out.divergenceMsg = "hardened: " + d;
            }
        }
        if (opts.fusedDifferential && !out.chaos && !out.diverged) {
            vm::VmConfig fusedCfg = hardCfg;
            fusedCfg.engine = vm::ExecEngine::Fused;
            // Bare like the reference replica: agreement with the
            // instrumented leg proves both engine identity and
            // recording passivity in one comparison.
            fusedCfg.recorder = nullptr;
            fusedCfg.metrics = nullptr;
            fusedCfg.profiler = nullptr;
            fusedCfg.recordSharedAccesses = false;
            legBegin();
            vm::RunResult r = vm::runProgram(*t.hardened, fusedCfg);
            legEnd(out.wallHardenedDiffUs);
            std::string d = tickDiff(h, r);
            if (!d.empty()) {
                out.diverged = true;
                out.divergenceMsg = "hardened-fused: " + d;
            }
        }
    }
    return out;
}

//
// The campaign runner.
//

namespace {

struct Job
{
    size_t target;
    ScheduleSpec spec;
    uint64_t seedOrdinal; ///< 1-based seed index within its policy
    size_t policyIdx;     ///< index into CampaignOptions::policies
};

bool
isFailingSchedule(const ScheduleOutcome &o)
{
    return o.ran && !o.unhardenedCorrect && !o.unhardenedInconclusive;
}

} // namespace

CampaignReport
runCampaign(const std::vector<Target> &targets,
            const CampaignOptions &opts)
{
    std::vector<Job> jobs;
    jobs.reserve(targets.size() * opts.policies.size() *
                 opts.seedsPerPolicy);
    for (size_t ti = 0; ti < targets.size(); ++ti)
        for (size_t pi = 0; pi < opts.policies.size(); ++pi) {
            const auto &[policy, depth] = opts.policies[pi];
            for (uint64_t seed = 1; seed <= opts.seedsPerPolicy; ++seed)
                jobs.push_back(
                    {ti, ScheduleSpec{policy, seed, depth}, seed, pi});
        }

    std::vector<ScheduleOutcome> results(jobs.size());
    std::vector<std::atomic<uint64_t>> failCount(targets.size());
    std::atomic<size_t> next{0};

    unsigned workers = std::max(1u, opts.workers);
    if (opts.telemetry) {
        // The guided pass's budget is an upper bound: it may stop at
        // the first failure, so done may finish below total.
        uint64_t totalJobs = jobs.size();
        if (opts.searchMode == SearchMode::Guided)
            totalJobs += targets.size() * opts.guidedBudget;
        opts.telemetry->beginCampaign(totalJobs, workers);
    }

    auto work = [&](unsigned worker) {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Job &j = jobs[i];
            if (opts.stopAfterFailures > 0 &&
                failCount[j.target].load(std::memory_order_relaxed) >=
                    opts.stopAfterFailures) {
                results[i].spec = j.spec; // ran stays false
                if (opts.telemetry)
                    opts.telemetry->noteSchedule(
                        worker, targets[j.target].name, results[i]);
                continue;
            }
            results[i] =
                runOneSchedule(targets[j.target], j.spec, opts);
            if (isFailingSchedule(results[i]))
                failCount[j.target].fetch_add(
                    1, std::memory_order_relaxed);
            // Live telemetry only — the deterministic report below
            // still aggregates from `results` in matrix order.
            if (opts.telemetry)
                opts.telemetry->noteSchedule(
                    worker, targets[j.target].name, results[i]);
        }
    };

    auto t0 = std::chrono::steady_clock::now();
    if (workers == 1 || jobs.size() <= 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(work, w);
        for (auto &th : pool)
            th.join();
    }
    auto t1 = std::chrono::steady_clock::now();

    // Aggregate in matrix order: the report is identical however the
    // workers interleaved (modulo stopAfterFailures short-circuiting).
    CampaignReport rep;
    rep.targets.resize(targets.size());
    std::vector<std::set<std::string>> tags(targets.size());
    // Distinct interleaving-edge keys per target, accumulated in
    // matrix order — std::set iterates sorted, which is exactly the
    // order coverageDigest() wants.
    std::vector<std::set<uint64_t>> covKeys(targets.size());
    // Wall-clock accumulation per (target, policy entry, leg) — the
    // four legs of runOneSchedule in execution order.
    struct WallAcc
    {
        uint64_t micros = 0;
        uint64_t spans = 0;
    };
    static const char *const kWallLegs[4] = {
        "unhardened", "differential", "hardened", "hardened_diff"};
    std::vector<std::vector<WallAcc>> wallAcc;
    if (opts.collectProfile)
        wallAcc.assign(targets.size(),
                       std::vector<WallAcc>(opts.policies.size() * 4));
    for (size_t ti = 0; ti < targets.size(); ++ti) {
        rep.targets[ti].name = targets[ti].name;
        if (opts.collectMetrics)
            for (const auto &[policy, depth] : opts.policies)
                rep.targets[ti].policyMetrics.emplace_back(
                    policyLabel(policy, depth), obs::MetricsRegistry{});
        if (opts.collectProfile)
            for (const auto &[policy, depth] : opts.policies)
                rep.targets[ti].policyProfiles.emplace_back(
                    policyLabel(policy, depth), obs::prof::ProfileAgg{});
    }

    for (size_t i = 0; i < jobs.size(); ++i) {
        const Job &j = jobs[i];
        const ScheduleOutcome &o = results[i];
        TargetReport &tr = rep.targets[j.target];
        if (!o.ran) {
            ++tr.skipped;
            continue;
        }
        ++tr.schedules;
        ++rep.schedules;
        tr.totalSteps += o.steps;
        rep.vmRuns += 1 + (opts.differential ? 1 : 0) +
                      ((opts.fusedDifferential && !o.diverged) ? 1 : 0);

        if (opts.collectCoverage) {
            bool novel = false;
            for (const obs::cov::Edge &e : o.coverage)
                novel |= covKeys[j.target].insert(e.key).second;
            if (novel) {
                ++tr.coverageNovelSchedules;
                tr.coverageGrowth.emplace_back(
                    tr.schedules, covKeys[j.target].size());
                if (tr.coverageGrowth.size() > 512) {
                    // Thin by two, keeping the newest point exact.
                    auto &g = tr.coverageGrowth;
                    std::vector<std::pair<uint64_t, uint64_t>> kept;
                    for (size_t k = 0; k < g.size(); k += 2)
                        kept.push_back(g[k]);
                    if (kept.back() != g.back())
                        kept.push_back(g.back());
                    g.swap(kept);
                }
            }
        }

        if (opts.collectProfile) {
            auto &wa = wallAcc[j.target];
            auto span = [&](int leg, uint64_t us) {
                wa[j.policyIdx * 4 + leg].micros += us;
                ++wa[j.policyIdx * 4 + leg].spans;
            };
            span(0, o.wallUnhardenedUs);
            if (opts.differential || opts.fusedDifferential)
                span(1, o.wallDifferentialUs);
            if (o.hardenedRan) {
                span(2, o.wallHardenedUs);
                if (!o.chaos && !o.diverged &&
                    (opts.differential || opts.fusedDifferential))
                    span(3, o.wallHardenedDiffUs);
            }
            if (o.hasProfile)
                tr.policyProfiles[j.policyIdx].second.merge(o.profile);
        }

        if (o.unhardenedInconclusive) {
            ++tr.inconclusive;
        } else if (!o.unhardenedCorrect) {
            ++tr.failingSchedules;
            if (o.unhardened == vm::Outcome::Hang)
                ++tr.deadlockSchedules;
            if (!o.unhardenedTag.empty())
                tags[j.target].insert(o.unhardenedTag);
            else
                tags[j.target].insert(vm::outcomeName(o.unhardened));
            if (!tr.foundFailure) {
                tr.foundFailure = true;
                tr.firstFailure = o.spec;
                tr.firstFailureSeedBudget = j.seedOrdinal;
                tr.firstFailureScheduleOrdinal = tr.schedules;
                // Includes the failing schedule's own edges — the
                // coverage block above ran first.
                tr.coverageEdgesAtFirstFailure =
                    covKeys[j.target].size();
            }
        }

        if (o.diverged && !tr.hasDivergence) {
            tr.hasDivergence = true;
            tr.firstDivergence = o.spec;
            tr.firstDivergenceMsg = o.divergenceMsg;
        }
        tr.divergences += o.diverged;

        if (o.hardenedRan) {
            ++tr.hardenedSchedules;
            if (opts.collectMetrics)
                tr.policyMetrics[j.policyIdx].second.merge(o.metrics);
            rep.vmRuns +=
                1 + (opts.differential && !o.chaos && !o.diverged) +
                (opts.fusedDifferential && !o.chaos && !o.diverged);
            tr.chaosRuns += o.chaos;
            tr.chaosRollbacks += o.chaosRollbacks;
            if (o.hardenedInconclusive) {
                ++tr.hardenedInconclusive;
            } else if (!o.hardenedCorrect) {
                if (targets[j.target].mustRecover) {
                    ++tr.unrecovered;
                    if (!tr.hasUnrecovered) {
                        tr.hasUnrecovered = true;
                        tr.firstUnrecovered = o.spec;
                    }
                }
                // The recovery property quantifies over schedules where
                // the *unhardened* leg failed: there the hardened leg
                // must either recover or surface the same failure kind.
                if (!o.unhardenedCorrect && !o.unhardenedInconclusive &&
                    o.hardened != o.unhardened)
                    ++tr.hardenedDifferentFailure;
            }
        }
    }

    for (size_t ti = 0; ti < targets.size(); ++ti) {
        TargetReport &tr = rep.targets[ti];
        tr.failureTags.assign(tags[ti].begin(), tags[ti].end());
        rep.totalSteps += tr.totalSteps;
        rep.divergences += tr.divergences;
        rep.unrecovered += tr.unrecovered;
        if (opts.collectCoverage) {
            tr.hasCoverage = true;
            tr.coverageDistinctEdges = covKeys[ti].size();
            if (tr.schedules > 0)
                tr.coverageNoveltyRate =
                    double(tr.coverageNovelSchedules) /
                    double(tr.schedules);
            std::vector<uint64_t> keys(covKeys[ti].begin(),
                                       covKeys[ti].end());
            tr.coverageDigest = obs::cov::coverageDigest(keys);
        }
        if (opts.collectProfile) {
            tr.hasProfile = true;
            for (const auto &[label, agg] : tr.policyProfiles)
                tr.profile.merge(agg);
            for (size_t pi = 0; pi < opts.policies.size(); ++pi)
                for (int leg = 0; leg < 4; ++leg) {
                    const WallAcc &a = wallAcc[ti][pi * 4 + leg];
                    if (!a.spans)
                        continue;
                    obs::prof::WallCell c;
                    c.kernel = tr.name;
                    c.policy = policyLabel(opts.policies[pi].first,
                                           opts.policies[pi].second);
                    c.leg = kWallLegs[leg];
                    c.micros = a.micros;
                    c.spans = a.spans;
                    tr.wall.push_back(std::move(c));
                }
        }
    }
    // Post-aggregation observability passes.  Both replay one schedule
    // per target *outside* the worker pool, so every aggregate above
    // stays independent of worker count.
    if (opts.diagnoseFailures || !opts.abortArtifactDir.empty()) {
        // Diagnosis-mode rings need depth: shared accesses are roughly
        // one event per scheduling tick.
        constexpr size_t kDiagCapacity = 65536;

        auto replay = [&](size_t ti, const ScheduleSpec &spec,
                          obs::FlightRecorder &plainRec,
                          obs::FlightRecorder &hardRec) {
            ScheduleInstruments ins;
            ins.unhardened = &plainRec;
            ins.hardened = &hardRec;
            ins.recordSharedAccesses = true;
            runOneSchedule(targets[ti], spec, opts, &ins);
        };

        // The hardened leg tells the recovery story when it has one;
        // otherwise diagnose the unhardened leg's terminal failure.
        auto pickLeg = [](const Target &t,
                          const obs::FlightRecorder &hardRec) {
            return t.hardened &&
                   (hardRec.totalOf(obs::EventKind::RecoveryDone) > 0 ||
                    hardRec.totalOf(obs::EventKind::FailureSite) > 0);
        };

        for (size_t ti = 0; ti < targets.size(); ++ti) {
            TargetReport &tr = rep.targets[ti];
            const Target &t = targets[ti];

            if (opts.diagnoseFailures && tr.foundFailure) {
                obs::FlightRecorder plainRec(kDiagCapacity);
                obs::FlightRecorder hardRec(kDiagCapacity);
                replay(ti, tr.firstFailure, plainRec, hardRec);
                bool useHard = pickLeg(t, hardRec);
                tr.diagnosis = obs::pm::diagnose(
                    useHard ? hardRec : plainRec,
                    useHard ? *t.hardened : *t.plain, t.name,
                    tr.firstFailure.token());
                tr.hasDiagnosis = true;
                tr.diagnosisLeg = useHard ? "hardened" : "unhardened";
            }

            // Flush-on-abort: an oracle violation (divergence or
            // unrecovered failure) dumps the instrumented legs' trace
            // and a diagnosis so the evidence survives process exit.
            if (!opts.abortArtifactDir.empty() &&
                (tr.hasDivergence || tr.hasUnrecovered)) {
                const ScheduleSpec &spec = tr.hasDivergence
                                               ? tr.firstDivergence
                                               : tr.firstUnrecovered;
                obs::FlightRecorder plainRec(kDiagCapacity);
                obs::FlightRecorder hardRec(kDiagCapacity);
                replay(ti, spec, plainRec, hardRec);

                std::filesystem::create_directories(
                    opts.abortArtifactDir);
                std::string token = spec.token();
                std::replace(token.begin(), token.end(), ':', '-');
                std::string stem = opts.abortArtifactDir + "/" +
                                   t.name + "_" + token;

                std::vector<obs::TraceProcess> procs;
                procs.push_back({&plainRec, t.name + " unhardened", 1});
                if (t.hardened)
                    procs.push_back({&hardRec, t.name + " hardened", 2});
                auto flush = [&](const std::string &path,
                                 const std::string &body) {
                    std::ofstream f(path, std::ios::binary);
                    f << body;
                    tr.abortArtifacts.push_back(path);
                };
                flush(stem + "_trace.json",
                      obs::chromeTraceJson(procs));

                bool useHard = pickLeg(t, hardRec);
                obs::pm::RecoveryReport diag = obs::pm::diagnose(
                    useHard ? hardRec : plainRec,
                    useHard ? *t.hardened : *t.plain, t.name,
                    spec.token());
                flush(stem + "_diagnosis.json", obs::pm::toJson(diag));
                flush(stem + "_diagnosis.txt",
                      obs::pm::renderText(diag));
            }
        }
    }

    // Replay corpus: re-record each first failing schedule with a
    // replay-grade (Grow — never drops) recorder, ddmin-minimise it,
    // and save the verified log.  Outside the worker pool like the
    // diagnosis pass, so aggregates stay worker-independent.
    if (!opts.replayLogDir.empty()) {
        for (size_t ti = 0; ti < targets.size(); ++ti) {
            TargetReport &tr = rep.targets[ti];
            const Target &t = targets[ti];
            if (!tr.foundFailure)
                continue;

            vm::VmConfig cfg =
                makeBaseConfig(t, tr.firstFailure, opts);
            obs::FlightRecorder rec(4096, obs::RecorderMode::Grow);
            cfg.recorder = &rec;
            cfg.recordSharedAccesses = true;
            vm::RunResult r = vm::runProgram(*t.plain, cfg);
            cfg.recorder = nullptr;
            cfg.recordSharedAccesses = false;

            obs::replay::ReplayLog log;
            if (!obs::replay::buildReplayLog(
                    t.name, tr.firstFailure.token(), cfg, rec, r, log,
                    tr.replayError))
                continue;

            obs::replay::MinimizeOptions mo;
            mo.preserveVerdict = true;
            obs::replay::MinimizeResult res =
                obs::replay::minimizeReplayLog(*t.plain, log, mo);
            // A failure that only reproduces under the exact recorded
            // schedule still gets its (unminimised) verified log.
            const obs::replay::ReplayLog &final_ =
                res.ok ? res.minimized : log;
            tr.replayOriginalSwitches = log.switches.size();
            tr.replayMinimizedSwitches = final_.switches.size();

            // Cross-engine leg of the faithfulness contract: the log
            // must replay under the Fused tier too.
            tr.replayCrossEngineVerified =
                obs::replay::replayLog(*t.plain, final_,
                                       vm::ExecEngine::Fused)
                    .faithful;

            std::filesystem::create_directories(opts.replayLogDir);
            std::string path =
                opts.replayLogDir + "/" + t.name + ".replay";
            if (!obs::replay::saveReplayLog(path, final_,
                                            tr.replayError))
                continue;
            tr.replayLogPath = path;
            tr.hasReplayLog = true;
            if (!res.ok)
                tr.replayError = res.err;
        }
        if (opts.telemetry) {
            uint64_t corpus = 0;
            for (const TargetReport &tr : rep.targets)
                corpus += tr.hasReplayLog;
            opts.telemetry->noteCorpusSize(corpus);
        }
    }

    // Guided search pass: one coverage-guided run per target
    // (src/explore/guided.h).  The driver batches its own worker
    // phases and folds in batch order, so — like every pass above —
    // the summary is identical for any worker count.  Targets run
    // sequentially so corpora never interleave.
    if (opts.searchMode == SearchMode::Guided) {
        for (size_t ti = 0; ti < targets.size(); ++ti) {
            TargetReport &tr = rep.targets[ti];
            const Target &t = targets[ti];

            GuidedOptions g;
            g.budget = opts.guidedBudget;
            g.batch = opts.guidedBatch;
            g.mutationSeed = opts.guidedMutationSeed;
            g.nudgeMax = opts.guidedNudgeMax;
            // Fresh seeds use the matrix's first point-taking policy
            // entry (the schedule family the corpus mutates).
            for (const auto &[policy, depth] : opts.policies)
                if (policy == vm::SchedPolicy::Pct ||
                    policy == vm::SchedPolicy::PreemptBound) {
                    g.basePolicy = policy;
                    g.baseDepth = depth;
                    break;
                }

            GuidedResult gr = runGuided(t, opts, g);

            tr.hasGuided = true;
            GuidedSummary &gs = tr.guided;
            gs.budget = g.budget;
            gs.schedules = gr.schedules;
            gs.freshSchedules = gr.freshSchedules;
            gs.mutatedSchedules = gr.mutatedSchedules;
            gs.freshNovel = gr.freshNovel;
            gs.mutationNovel = gr.mutationNovel;
            gs.mutationYield = gr.mutationYield();
            for (size_t op = 0; op < kMutOpCount; ++op) {
                gs.perOp[op] = gr.perOp[op];
                gs.perOpNovel[op] = gr.perOpNovel[op];
            }
            gs.corpusEntries = gr.corpus.entries.size();
            gs.corpusDigest = gr.corpus.digest();
            gs.foundFailure = gr.foundFailure;
            gs.firstFailure = gr.firstFailure;
            gs.seedsToFirstFailure = gr.seedsToFirstFailure;
            gs.firstFailureTag = gr.firstFailureTag;
            gs.blindSeedsToFirstFailure =
                tr.foundFailure ? tr.firstFailureScheduleOrdinal : 0;
            gs.distinctEdges = gr.distinctEdges;
            gs.coverageDigest = gr.coverageDigest;
            // The guided schedules answer to the same oracles as the
            // blind matrix — their verdicts gate the campaign too.
            gs.divergences = gr.divergences;
            gs.unrecovered = gr.unrecovered;
            rep.divergences += gr.divergences;
            rep.unrecovered += gr.unrecovered;

            if (!opts.corpusDir.empty()) {
                std::filesystem::create_directories(opts.corpusDir);
                std::string path =
                    opts.corpusDir + "/" + t.name + ".corpus";
                if (saveCorpus(path, gr.corpus, gs.error))
                    gs.corpusPath = path;
            }
        }
    }

    rep.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (rep.seconds > 0)
        rep.schedulesPerSec = double(rep.schedules) / rep.seconds;
    return rep;
}

std::string
CampaignReport::summary() const
{
    std::string out;
    for (const TargetReport &tr : targets) {
        out += strfmt(
            "%-14s %6llu schedules  %5llu failing  %3llu inconclusive"
            "  %llu divergent  %llu unrecovered",
            tr.name.c_str(), (unsigned long long)tr.schedules,
            (unsigned long long)tr.failingSchedules,
            (unsigned long long)tr.inconclusive,
            (unsigned long long)tr.divergences,
            (unsigned long long)tr.unrecovered);
        if (tr.foundFailure)
            out += strfmt("  first-failure %s (seed budget %llu)",
                          tr.firstFailure.token().c_str(),
                          (unsigned long long)tr.firstFailureSeedBudget);
        out += '\n';
        if (tr.hasDivergence)
            out += "  DIVERGENCE (" + tr.firstDivergenceMsg + "): " +
                   reproCommand(tr.name, tr.firstDivergence) + "\n";
        if (tr.hasUnrecovered)
            out += "  UNRECOVERED: " +
                   reproCommand(tr.name, tr.firstUnrecovered) + "\n";
    }
    out += strfmt("total: %llu schedules, %llu VM runs, %.1f sched/s, "
                  "%llu divergences, %llu unrecovered\n",
                  (unsigned long long)schedules,
                  (unsigned long long)vmRuns, schedulesPerSec,
                  (unsigned long long)divergences,
                  (unsigned long long)unrecovered);
    return out;
}

} // namespace conair::explore
