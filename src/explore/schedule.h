/**
 * @file
 * One point in the schedule-exploration space: a (policy, seed, depth)
 * triple, optionally pinned to explicit change points.  Specs
 * serialise to compact tokens ("pct:d3:s17", "pct:d3:s17:c120,340") so
 * a divergent schedule found by a campaign can be reproduced from one
 * command line.
 */
#pragma once

#include <string>
#include <vector>

#include "vm/config.h"

namespace conair::explore {

/** A fully reproducible schedule: policy + seed + search depth. */
struct ScheduleSpec
{
    vm::SchedPolicy policy = vm::SchedPolicy::Pct;
    uint64_t seed = 1;

    /** PCT depth d (priority-change points = d-1) or the preemption
     *  bound; ignored by Random/RoundRobin. */
    uint32_t depth = 3;

    /**
     * Explicit change/preemption points (scheduling ticks, strictly
     * increasing, each >= 1).  Empty = the scheduler samples depth-1
     * (PCT) / depth (PreemptBound) points from the seed as usual.
     * Non-empty = the points are pinned verbatim
     * (VmConfig::schedPoints) while priorities still derive from the
     * seed — the representation the coverage-guided mutation engine
     * nudges (src/explore/guided.h).  Only meaningful for
     * Pct/PreemptBound.
     */
    std::vector<uint64_t> points;

    /** Writes the schedule knobs into @p cfg (policy, seed, depth,
     *  points); horizon/quantum stay as the caller set them. */
    void applyTo(vm::VmConfig &cfg) const;

    /** Compact token: "pct:d3:s17", "pb:d2:s5", "random:s9"; pinned
     *  points append a c field: "pct:d3:s17:c120,340". */
    std::string token() const;

    bool operator==(const ScheduleSpec &) const = default;
};

/**
 * Parses a token produced by ScheduleSpec::token(); returns false with
 * a one-line @p err on malformed input.  The numeric fields are parsed
 * strictly: digits only (no sign, no whitespace, no trailing junk),
 * overflow is rejected rather than silently wrapped, and d/s/c fields
 * may appear at most once — so a mistyped repro token fails loudly
 * instead of quietly exploring a different schedule.  A c field
 * (explicit change points) must be a strictly increasing,
 * comma-separated list of ticks >= 1 and is only accepted for pct/pb.
 */
bool parseScheduleToken(const std::string &tok, ScheduleSpec &out,
                        std::string &err);

/** Error-message-free convenience overload. */
bool parseScheduleToken(const std::string &tok, ScheduleSpec &out);

/** The one-line repro command printed for a divergent schedule. */
std::string reproCommand(const std::string &app, const ScheduleSpec &s);

} // namespace conair::explore
