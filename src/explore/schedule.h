/**
 * @file
 * One point in the schedule-exploration space: a (policy, seed, depth)
 * triple.  Specs serialise to compact tokens ("pct:d3:s17") so a
 * divergent schedule found by a campaign can be reproduced from one
 * command line.
 */
#pragma once

#include <string>

#include "vm/config.h"

namespace conair::explore {

/** A fully reproducible schedule: policy + seed + search depth. */
struct ScheduleSpec
{
    vm::SchedPolicy policy = vm::SchedPolicy::Pct;
    uint64_t seed = 1;

    /** PCT depth d (priority-change points = d-1) or the preemption
     *  bound; ignored by Random/RoundRobin. */
    uint32_t depth = 3;

    /** Writes the schedule knobs into @p cfg (policy, seed, depth);
     *  horizon/quantum stay as the caller set them. */
    void applyTo(vm::VmConfig &cfg) const;

    /** Compact token: "pct:d3:s17", "pb:d2:s5", "random:s9". */
    std::string token() const;

    bool operator==(const ScheduleSpec &) const = default;
};

/**
 * Parses a token produced by ScheduleSpec::token(); returns false with
 * a one-line @p err on malformed input.  The numeric fields are parsed
 * strictly: digits only (no sign, no whitespace, no trailing junk),
 * overflow is rejected rather than silently wrapped, and d/s fields
 * may appear at most once — so a mistyped repro token fails loudly
 * instead of quietly exploring a different schedule.
 */
bool parseScheduleToken(const std::string &tok, ScheduleSpec &out,
                        std::string &err);

/** Error-message-free convenience overload. */
bool parseScheduleToken(const std::string &tok, ScheduleSpec &out);

/** The one-line repro command printed for a divergent schedule. */
std::string reproCommand(const std::string &app, const ScheduleSpec &s);

} // namespace conair::explore
