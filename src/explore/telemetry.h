/**
 * @file
 * Live campaign telemetry: the shared state behind the embedded
 * `/metrics`, `/status`, and `/coverage` endpoints while a campaign
 * runs (docs/OBSERVABILITY.md, "Live telemetry endpoints").
 *
 * A CampaignTelemetry is *observational only*: workers publish into
 * it after each finished schedule (atomic counters, a lock-free
 * CoverageMap merge, a short mutex-guarded metrics fold), and the
 * HTTP handlers render snapshots out of it.  Nothing a reader does
 * can perturb the campaign — the deterministic campaign report is
 * still aggregated from the results matrix in matrix order, exactly
 * as without telemetry.  The only live-vs-final caveat: the order in
 * which workers merge coverage is timing-dependent, so the *growth
 * curve* sampled here is a live view; the per-target curves in
 * BENCH_explore.json are recomputed deterministically in matrix
 * order (the final distinct-edge count and digest agree between the
 * two by set-union invariance).
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/coverage/coverage.h"
#include "obs/metrics.h"
#include "obs/profile/profile.h"
#include "obs/profile/profile_export.h"

namespace conair::explore {

struct ScheduleOutcome;

class CampaignTelemetry
{
  public:
    CampaignTelemetry() = default;

    CampaignTelemetry(const CampaignTelemetry &) = delete;
    CampaignTelemetry &operator=(const CampaignTelemetry &) = delete;

    /** Arms the telemetry for a campaign of @p totalJobs schedules on
     *  @p workers workers (runCampaign calls this). */
    void beginCampaign(uint64_t totalJobs, unsigned workers);

    /** Publishes one finished schedule of target @p target from
     *  worker @p worker: counters, the outcome's coverage fold, its
     *  hardened-leg metrics, and its phase profile / wall spans (when
     *  the campaign collects profiles).  Thread-safe. */
    void noteSchedule(unsigned worker, const std::string &target,
                      const ScheduleOutcome &o);

    /** Replay-corpus size (set by the post-aggregation pass). */
    void noteCorpusSize(uint64_t n);

    /** Accumulates guided-search progress (runGuided publishes one
     *  delta per folded batch): mutation-corpus entries admitted,
     *  mutated / fresh schedules tried and how many of each were
     *  novel.  Campaign-wide — sums across targets.  Thread-safe. */
    void addGuided(uint64_t corpusEntries, uint64_t mutationsTried,
                   uint64_t mutationsNovel, uint64_t freshTried,
                   uint64_t freshNovel);

    /** The campaign-global live coverage map. */
    const obs::cov::CoverageMap &coverage() const { return coverage_; }
    obs::cov::CoverageMap &coverage() { return coverage_; }

    uint64_t schedulesDone() const;
    uint64_t failuresFound() const;

    /** GET /status body: live campaign JSON (schedules done/total,
     *  failures, corpus size, per-worker schedules/sec, coverage
     *  growth curve samples). */
    std::string statusJson() const;

    /** GET /coverage body: the full edge dump as JSON. */
    std::string coverageJson() const;

    /** GET /metrics body: the live-merged MetricsRegistry in
     *  Prometheus text exposition plus campaign/coverage gauges. */
    std::string prometheusText() const;

    /** GET /profile body: the live phase profile + wall spans as
     *  speedscope JSON (one "kernel/policy" frame group per hardened
     *  profile merged so far).  Valid mid-campaign at any time. */
    std::string profileJson() const;

  private:
    struct WorkerCell
    {
        // Padded so neighbouring workers never share a cache line.
        alignas(64) std::atomic<uint64_t> schedules{0};
    };

    std::atomic<uint64_t> total_{0};
    std::atomic<uint64_t> done_{0};
    std::atomic<uint64_t> failures_{0};
    std::atomic<uint64_t> corpus_{0};

    // Guided-search progress (0 in blind campaigns).
    std::atomic<uint64_t> guidedCorpus_{0};
    std::atomic<uint64_t> guidedMutTried_{0};
    std::atomic<uint64_t> guidedMutNovel_{0};
    std::atomic<uint64_t> guidedFreshTried_{0};
    std::atomic<uint64_t> guidedFreshNovel_{0};
    std::unique_ptr<WorkerCell[]> workers_; ///< workerCount_ cells
    unsigned workerCount_ = 0;
    std::chrono::steady_clock::time_point start_{};

    obs::cov::CoverageMap coverage_;

    mutable std::mutex mutex_; ///< guards metrics_, growth_, profiles_,
                               ///< and wall_
    obs::MetricsRegistry metrics_;
    /** (schedule#, distinctEdges) samples, appended whenever a merge
     *  grew the map; thinned to stay bounded. */
    std::vector<std::pair<uint64_t, uint64_t>> growth_;
    /** Live phase profile per "kernel/policy" group (sorted map =
     *  deterministic group order in /profile). */
    std::map<std::string, obs::prof::ProfileAgg> profiles_;
    /** Live wall spans per (kernel, policy, leg). */
    std::map<std::string, obs::prof::WallCell> wall_;
};

} // namespace conair::explore
