/**
 * @file
 * Coverage-guided schedule exploration (AFL-style, over interleaving
 * coverage instead of branch coverage).
 *
 * The blind campaign sprays independent (policy, seed) schedules; the
 * guided driver layered here closes the loop through the coverage maps
 * of src/obs/coverage/: every completed run is folded through
 * foldCoverage(), and a schedule whose fold contributes novel edges to
 * the per-target coverage set is *admitted to a corpus* — with its
 * change points materialised (ScheduleSpec::points), so the schedule
 * is pinned independently of the seed-sampling path and can be
 * mutated point-by-point.  The driver then splits its budget between
 * fresh seeds of the base policy and mutations of corpus entries:
 *
 *   nudge    move one change point by ±k ticks
 *   add      insert a change point drawn over the horizon (PCT depth
 *            grows with it, opening one more priority band)
 *   drop     remove one change point (entries with >= 2 points)
 *   depth    bump the PCT depth with the points unchanged (reshuffles
 *            the low-band priorities of earlier victims)
 *   policy   re-run the same points under the other systematic policy
 *            (pct <-> pb)
 *   near     insert a change point *close to* an existing one (within
 *            4x the nudge radius) — the two-window signature: bugs
 *            that need a second preemption shortly after the first
 *            (order violations published in two steps, check-then-act
 *            pairs) live in exactly this neighbourhood, which a
 *            uniform add almost never samples
 *
 * Energy is proportional to novel-edge yield, with racy-pair edges
 * weighted kRacyEnergyBoost-fold: a schedule that interleaved two
 * *conflicting* accesses (obs::cov::EdgeKind::RacyPair) is
 * failure-adjacent even when it completed correctly, so the search
 * concentrates its nudge/near mutations around such entries and walks
 * the change points into the racy window.  An entry that contributed
 * more never-seen edges is selected for mutation more often.  All
 * selection draws come from a per-round RNG seeded by
 * (mutationSeed, round), and batches are generated *between* worker
 * phases from corpus state folded in batch order — so the whole
 * search, its corpus, and its seeds-to-first-failure are bit-identical
 * for any worker count (pinned by tests/explore/guided_test.cpp).
 *
 * Corpora serialise to a versioned on-disk line format
 * ("conair-corpus v1") with the same strictness contract as the
 * replay log (src/obs/replay/replay_log.h): byte-identical
 * round-trips, line-numbered parse errors, refusal on version
 * mismatch — and every persisted entry replays strictly via the
 * replay substrate (pinned by the corpus tests).
 */
#pragma once

#include <string>
#include <vector>

#include "explore/campaign.h"
#include "support/rng.h"

namespace conair::explore {

/** The mutation operators, in operator-id (serialisation) order. */
enum class MutOp : uint8_t {
    Nudge,       ///< move one change point by ±k ticks
    Add,         ///< insert a change point (PCT: depth grows too)
    Drop,        ///< remove one change point (needs >= 2 points)
    DepthBump,   ///< PCT only: depth + 1, points unchanged
    CrossPolicy, ///< pct <-> pb with the same seed and points
    NearAdd,     ///< insert a point near an existing one (two-window)
};

inline constexpr size_t kMutOpCount = size_t(MutOp::NearAdd) + 1;

/** Energy weight of one novel RacyPair edge relative to an ordinary
 *  novel edge (see the file comment: racy schedules are
 *  failure-adjacent, so mutation pressure concentrates on them). */
inline constexpr uint64_t kRacyEnergyBoost = 16;

/** Stable lowercase operator name ("nudge", "add", ...). */
const char *mutOpName(MutOp op);

/** Inverse of mutOpName; false when @p name is not an operator. */
bool mutOpFromName(const std::string &name, MutOp &out);

/** One corpus entry: a schedule that contributed novel edges. */
struct CorpusEntry
{
    /** The admitted schedule, change points always materialised. */
    ScheduleSpec spec;

    /** The edge keys this schedule saw first (sorted, deduplicated
     *  per run by foldCoverage). */
    std::vector<uint64_t> novelEdges;

    /** How many of novelEdges are RacyPair edges — the
     *  failure-adjacency signal driving the energy boost. */
    uint64_t racy = 0;

    /** 1-based ordinal of the schedule in guided generation order. */
    uint64_t ordinal = 0;

    /** Operator that produced it ("fresh" for an unmutated seed). */
    std::string op = "fresh";

    /** Parent entry's token ("" for fresh seeds). */
    std::string parent;

    uint64_t energy() const
    {
        return novelEdges.size() + kRacyEnergyBoost * racy;
    }

    bool operator==(const CorpusEntry &) const = default;
};

/** The mutation corpus of one target. */
struct Corpus
{
    std::string program; ///< target name, "" until first save

    std::vector<CorpusEntry> entries;

    uint64_t totalEnergy() const;

    /** "conair-corpus v1" line format; equal corpora serialise
     *  byte-identically. */
    std::string serialize() const;

    /** FNV-1a over serialize() minus the program header — the
     *  worker-count-independence fingerprint. */
    uint64_t digest() const;
};

/** Strict parser: line-numbered errors on malformed/truncated input,
 *  duplicate fields, and version mismatch. */
bool parseCorpus(const std::string &text, Corpus &out, std::string &err);

bool loadCorpus(const std::string &path, Corpus &out, std::string &err);
bool saveCorpus(const std::string &path, const Corpus &c,
                std::string &err);

/**
 * Materialises the change points the scheduler would sample for
 * @p s at @p horizon — the exact mirror of the Interp's seed-derived
 * sampling (same split RNG stream, same draw order, sorted).  Specs
 * with explicit points are returned verbatim (sorted).  Running the
 * returned points as ScheduleSpec::points reproduces the original
 * schedule tick for tick.
 */
std::vector<uint64_t> derivePoints(const ScheduleSpec &s,
                                   uint64_t horizon);

/**
 * Applies @p op to a corpus entry's schedule.  Pure function of
 * (entry, op, rng state): the same inputs always yield the same
 * mutated spec (the mutation-determinism property test pins this).
 * Points stay canonical (strictly increasing, >= 1).  Returns false
 * when the operator is inapplicable (drop with < 2 points, depth
 * bump on a PreemptBound entry).
 */
bool mutateSpec(const CorpusEntry &e, MutOp op, uint64_t horizon,
                uint64_t nudgeMax, Rng &rng, ScheduleSpec &out);

/** Guided-driver knobs (the campaign options carry the legs/oracles;
 *  these only shape the search). */
struct GuidedOptions
{
    /** Base policy for fresh seeds (and the depth they start at). */
    vm::SchedPolicy basePolicy = vm::SchedPolicy::Pct;
    uint32_t baseDepth = 2;

    /** Total schedules the driver may run. */
    uint64_t budget = 250;

    /** Schedules generated per round (worker-phase granularity). */
    unsigned batch = 16;

    /** Base seed of the per-round mutation RNG streams. */
    uint64_t mutationSeed = 1;

    /** Nudge radius: a change point moves by 1..nudgeMax ticks. */
    uint64_t nudgeMax = 24;

    /** Interleave Random-policy probe seeds into the fresh stream
     *  (every second fresh schedule).  Change points live on the
     *  scheduling-tick axis (shared stores + sync ops), so a point
     *  schedule can never preempt between two consecutive *loads*;
     *  atomicity violations in load-load windows (MySQL2's double
     *  read of in_use) are reachable only through the Random policy's
     *  instruction-granularity quanta.  Probe discoveries are not
     *  admitted to the corpus (no points to mutate), but their edges
     *  fold into the coverage set like any other run's. */
    bool randomProbes = true;

    /** Stop at the first failing schedule (the seeds-to-first-failure
     *  measurement); false explores the whole budget. */
    bool stopAtFirstFailure = true;
};

/** Everything one guided search produced. */
struct GuidedResult
{
    uint64_t schedules = 0; ///< schedules actually run
    uint64_t freshSchedules = 0;
    uint64_t mutatedSchedules = 0;

    /** Schedules admitted to the corpus (contributed novel edges). */
    uint64_t freshNovel = 0;
    uint64_t mutationNovel = 0;

    /** Mutated schedules tried / admitted, per operator. */
    uint64_t perOp[kMutOpCount] = {};
    uint64_t perOpNovel[kMutOpCount] = {};

    bool foundFailure = false;
    ScheduleSpec firstFailure;
    /** 1-based ordinal of the first failing schedule in generation
     *  order — the guided "seeds to first failure". */
    uint64_t seedsToFirstFailure = 0;
    std::string firstFailureTag;

    uint64_t distinctEdges = 0;
    uint64_t coverageDigest = 0;

    /** Oracle verdicts over the guided schedules (engine divergences
     *  and unrecovered hardened failures under mustRecover) — the
     *  guided pass is held to the same three oracles as the blind
     *  matrix. */
    uint64_t divergences = 0;
    uint64_t unrecovered = 0;

    Corpus corpus;

    /** mutationNovel / mutatedSchedules (0 when none ran). */
    double mutationYield() const
    {
        return mutatedSchedules
                   ? double(mutationNovel) / double(mutatedSchedules)
                   : 0.0;
    }
};

/**
 * Runs the coverage-guided search over one target.  @p opts carries
 * the campaign legs and oracles (differential, hardened, coverage is
 * forced on); @p g shapes the search.  Workers only parallelise
 * *within* a batch; everything the next batch depends on is folded in
 * batch order, so the result is independent of opts.workers.
 */
GuidedResult runGuided(const Target &t, const CampaignOptions &opts,
                       const GuidedOptions &g);

} // namespace conair::explore
