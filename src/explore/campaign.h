/**
 * @file
 * The schedule-exploration campaign engine.
 *
 * A campaign fans one or more compiled programs out across thousands
 * of (seed, policy, depth) schedules on a worker pool — the VM is
 * single-threaded internally, so one Interp per worker makes the
 * search embarrassingly parallel — and layers a differential recovery
 * oracle over every explored schedule:
 *
 *  1. the unhardened program must either pass cleanly or fail; every
 *     failing schedule is recorded (these are the rediscovered buggy
 *     interleavings the paper forces with injected sleeps, §5);
 *  2. the hardened program must never end in an unrecovered failure on
 *     targets marked mustRecover (ConAir's whole-campaign guarantee);
 *  3. the Decoded and Reference engines must be tick-identical on the
 *     same schedule (clock, steps, outcome, output, exit code).
 *
 * The first violating (app, seed, policy) triple is reported as a
 * one-line repro command.  Campaign results are deterministic: jobs
 * are aggregated in matrix order, independent of worker timing.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "explore/schedule.h"
#include "obs/coverage/coverage.h"
#include "obs/metrics.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/profile/profile.h"
#include "obs/profile/profile_export.h"
#include "vm/stats.h"

namespace conair::ir {
class Module;
}

namespace conair::obs {
class FlightRecorder;
}

namespace conair::explore {

class CampaignTelemetry;

/** One program entered in a campaign (modules are borrowed and must
 *  outlive the run; they are read-only and shared across workers). */
struct Target
{
    std::string name;

    const ir::Module *plain = nullptr;    ///< unhardened build
    const ir::Module *hardened = nullptr; ///< ConAir build (null = skip)

    /** Correct-run expectations (wrong-output detection). */
    std::string expectedOutput;
    int64_t expectedExit = 0;
    bool checkOutput = true;

    /** Enforce oracle 2: every hardened schedule must end correct;
     *  any hardened failure counts as unrecovered. */
    bool mustRecover = false;

    /** PCT/PreemptBound sampling horizon in scheduling ticks (shared
     *  stores + sync ops; see calibrateHorizon). */
    uint64_t horizon = 2'000;

    /** Random-policy expected run length between switches. */
    uint64_t quantum = 50;
};

/** How a campaign searches the schedule space. */
enum class SearchMode {
    /** The classic independent (policy, seed) matrix. */
    Blind,
    /** The matrix plus, per target, a coverage-guided search pass
     *  (src/explore/guided.h): novel-coverage schedules enter a
     *  mutation corpus and the budget is split between fresh seeds
     *  and corpus mutations. */
    Guided,
};

/** Campaign shape: which schedules, how many workers, which legs. */
struct CampaignOptions
{
    /** Seeds 1..N are explored per (policy, depth) entry. */
    unsigned seedsPerPolicy = 250;

    /** The policy axis of the matrix: (policy, depth) pairs. */
    std::vector<std::pair<vm::SchedPolicy, uint32_t>> policies = {
        {vm::SchedPolicy::Pct, 2},
        {vm::SchedPolicy::Pct, 3},
        {vm::SchedPolicy::PreemptBound, 2},
        {vm::SchedPolicy::Random, 0},
    };

    /** Worker threads (clamped to >= 1). */
    unsigned workers = 4;

    /** Per-run step budget; exploration schedules can livelock spin
     *  loops, so runs hitting it count as inconclusive, not failing. */
    uint64_t maxSteps = 4'000'000;

    /** Retry budget for the hardened leg: unrecoverable schedules must
     *  fall through to their original failure quickly. */
    int64_t maxRetries = 200;

    /** Run the Reference-engine replica of the unhardened leg (and of
     *  the hardened leg on chaos-free schedules). */
    bool differential = true;

    /** Additionally run a Fused-engine replica of each leg (same
     *  skip rules as @ref differential plus skipping legs that already
     *  diverged): the superinstruction tier joins the tick-identity
     *  oracle.  Off by default — it adds one full run per leg. */
    bool fusedDifferential = false;

    /** Hardened-leg chaos injection (VmConfig::chaosRollbackEveryN)
     *  on even seeds; 0 disables the chaos dimension. */
    uint64_t chaosEveryN = 128;

    /** Stop issuing new schedules for a target once this many failing
     *  schedules were found (0 = explore the full matrix).  Saves time
     *  in smoke runs; aggregate counters then under-report. */
    uint64_t stopAfterFailures = 0;

    /** Collect a MetricsRegistry from every hardened leg and aggregate
     *  it per (target, policy entry) into TargetReport::policyMetrics.
     *  Aggregation happens in matrix order, so the merged metrics are
     *  independent of worker count like every other report field. */
    bool collectMetrics = false;

    /**
     * After aggregation, deterministically replay every target's first
     * failing schedule in diagnosis recording mode and attach the
     * postmortem RecoveryReport (racy pair, switch window, verdict) to
     * the TargetReport — so every first-failing schedule in
     * BENCH_explore.json carries a diagnosis.  The replay happens
     * outside the worker pool (one schedule per target), so campaign
     * aggregates stay worker-independent.
     */
    bool diagnoseFailures = false;

    /**
     * Flush-on-abort: when a differential leg trips (divergence or
     * unrecovered failure), re-run that schedule instrumented and dump
     * the legs' trace plus the diagnosis into this directory (created
     * if missing) instead of discarding them — oracle failures stay
     * debuggable after the campaign exits.  Empty = off.
     */
    std::string abortArtifactDir;

    /**
     * Replay corpus: after aggregation, re-record every target's first
     * failing schedule replay-grade (Grow recorder, diagnosis mode),
     * ddmin-minimise the switch list with the failure and diagnosis
     * verdict preserved, strictly verify the minimised log, and save
     * it as DIR/<kernel>.replay — the O(1) repro artifact behind
     * `bench_explore --replay`.  Runs outside the worker pool like the
     * diagnosis pass.  Empty = off.
     */
    std::string replayLogDir;

    /**
     * Fold an interleaving-coverage edge set out of every unhardened
     * Decoded leg (src/obs/coverage/): the leg runs with a private
     * FlightRecorder attached — recording is passive, and the bare
     * Reference/Fused replicas re-verify that on every schedule — and
     * the post-run fold lands in ScheduleOutcome::coverage.  Per-target
     * aggregates (distinct edges, novelty, digest, growth curve) are
     * computed in matrix order like every other report field.
     */
    bool collectCoverage = false;

    /**
     * Recovery-cost profiling (src/obs/profile/): attach a
     * PhaseProfiler to every hardened Decoded leg and fold the phase
     * ticks plus per-episode recovery tax into
     * TargetReport::policyProfiles / TargetReport::profile, in matrix
     * order like the metrics — identical for any worker count.  The
     * bare Reference/Fused replicas keep re-proving on every schedule
     * that profiling is passive (tick identity against the profiled
     * leg).  Also times each leg's wall-clock span into
     * TargetReport::wall.
     */
    bool collectProfile = false;

    /**
     * @name Guided search (only when searchMode == SearchMode::Guided)
     * @{
     */
    SearchMode searchMode = SearchMode::Blind;

    /** Schedules the guided pass may run per target. */
    uint64_t guidedBudget = 250;

    /** Guided batch size (worker-phase granularity; results fold in
     *  batch order, so reports stay worker-count independent). */
    unsigned guidedBatch = 16;

    /** Base seed of the guided mutation RNG streams. */
    uint64_t guidedMutationSeed = 1;

    /** Nudge mutation radius in scheduling ticks. */
    uint64_t guidedNudgeMax = 24;

    /** Persist each target's mutation corpus as DIR/<kernel>.corpus
     *  (created if missing).  Empty = don't persist. */
    std::string corpusDir;
    /** @} */

    /**
     * Live telemetry sink for the embedded /metrics, /status,
     * /coverage, and /profile endpoints (src/explore/telemetry.h).
     * Borrowed, may be null.  Workers publish each finished schedule
     * into it as they go; it never feeds back into the campaign, so
     * the deterministic report is unaffected.
     */
    CampaignTelemetry *telemetry = nullptr;
};

/** Everything one explored schedule produced. */
struct ScheduleOutcome
{
    ScheduleSpec spec;
    bool ran = false;     ///< false = skipped by stopAfterFailures
    bool chaos = false;   ///< hardened leg had chaos injection on

    vm::Outcome unhardened = vm::Outcome::Success;
    bool unhardenedCorrect = false;
    bool unhardenedInconclusive = false; ///< step budget exhausted
    std::string unhardenedTag;           ///< failure tag, if any

    bool hardenedRan = false;
    vm::Outcome hardened = vm::Outcome::Success;
    bool hardenedCorrect = false;
    bool hardenedInconclusive = false;
    uint64_t chaosRollbacks = 0;

    bool diverged = false; ///< Decoded vs Reference mismatch
    std::string divergenceMsg;

    uint64_t steps = 0; ///< unhardened Decoded-leg step count

    /** Hardened-leg RunStats counters surfaced for the trace-vs-stats
     *  validation (--repro --trace cross-checks event totals). */
    uint64_t hardenedRollbacks = 0;
    uint64_t hardenedCheckpoints = 0;

    /** Full hardened-leg RunStats: the --repro --trace cross-check
     *  compares EVERY per-kind event total against these, not just the
     *  two counters above. */
    vm::RunStats hardenedStats;

    /** Hardened-leg metrics (populated when opts.collectMetrics). */
    obs::MetricsRegistry metrics;

    /** Interleaving-coverage edges folded from the unhardened Decoded
     *  leg's trace (populated when opts.collectCoverage): deduplicated
     *  per run, each stamped with its first discovery, sorted by key. */
    std::vector<obs::cov::Edge> coverage;

    /** Hardened-leg phase profile + recovery tax (populated when
     *  opts.collectProfile and the target has a hardened build). */
    bool hasProfile = false;
    obs::prof::ProfileAgg profile;

    /** Wall-clock leg spans in microseconds (populated when
     *  opts.collectProfile): the plain Decoded leg, its differential
     *  replicas, the hardened leg, and its differential replicas.
     *  Wall time is the only nondeterministic field in the outcome;
     *  everything else stays byte-identical run to run. */
    uint64_t wallUnhardenedUs = 0;
    uint64_t wallDifferentialUs = 0;
    uint64_t wallHardenedUs = 0;
    uint64_t wallHardenedDiffUs = 0;
};

/**
 * Optional observability hooks for runOneSchedule (the --repro --trace
 * path).  Only the *Decoded* unhardened/hardened legs are instrumented;
 * the Reference differential replicas always run bare — recording is
 * passive, so the tick-identity oracle doubles as a regression test
 * that instrumentation never perturbs execution.
 */
struct ScheduleInstruments
{
    obs::FlightRecorder *unhardened = nullptr;
    obs::FlightRecorder *hardened = nullptr;

    /** Diagnosis recording mode (VmConfig::recordSharedAccesses) on
     *  the instrumented Decoded legs: SharedLoad/SharedStore events
     *  feed the postmortem racy-pair reconstruction.  The Reference
     *  replicas still run bare. */
    bool recordSharedAccesses = false;
};

/**
 * Outcome of the fix-synthesis pass over one target (src/fix/): the
 * patch synthesized from the first failing schedule's diagnosis plus
 * its automated proof obligations (minimized-replay check, full
 * campaign re-run on the patched build, clean-run overhead bound).
 * The campaign engine itself never synthesizes fixes — bench_explore
 * runs the pass after runCampaign() and fills this in, so the struct
 * lives here header-only to keep conair_explore free of a fix-library
 * dependency while `kernels[].fix` still rides in the TargetReport.
 */
struct FixSummary
{
    bool attempted = false;   ///< the pass ran for this target
    bool synthesized = false; ///< a verifier-clean patch was produced
    std::string strategy;     ///< "wait-for-value", "lock-guard", ...
    std::string verdict;      ///< diagnosis verdict the fix targets
    std::string variable;     ///< racing global the fix protects
    std::string mutexName;    ///< lock used/introduced ("" for waits)
    bool usedExistingMutex = false;
    uint64_t edits = 0;       ///< patch-report edit count
    std::string error;        ///< non-empty when synthesis failed

    /** Minimized-replay obligation: the kernel's .replay log no longer
     *  reproduces the failure on the patched build. */
    bool replayChecked = false;
    bool replayFailureGone = false;

    /** Campaign obligation: full matrix re-run on the patched build. */
    bool campaignRan = false;
    uint64_t patchedSchedules = 0;
    uint64_t patchedFailing = 0;
    uint64_t patchedDeadlocks = 0;
    uint64_t patchedDivergences = 0;
    uint64_t patchedInconclusive = 0;

    /** Clean-run step overhead of patched vs. baseline. */
    double overhead = 0;
    bool overheadOk = false;

    bool validated = false; ///< every obligation above passed
};

/**
 * What one target's guided search pass produced (a plain-data
 * projection of GuidedResult, kept here so campaign.h does not depend
 * on guided.h; runCampaign fills it when
 * CampaignOptions::searchMode == SearchMode::Guided).
 */
struct GuidedSummary
{
    uint64_t budget = 0;    ///< schedules the pass was allowed
    uint64_t schedules = 0; ///< schedules it actually ran
    uint64_t freshSchedules = 0;
    uint64_t mutatedSchedules = 0;
    uint64_t freshNovel = 0;
    uint64_t mutationNovel = 0;
    /** mutationNovel / mutatedSchedules (0 when none ran). */
    double mutationYield = 0;

    /** Mutated schedules tried / admitted per operator, in MutOp
     *  order (nudge, add, drop, depth, policy, near). */
    uint64_t perOp[6] = {};
    uint64_t perOpNovel[6] = {};

    uint64_t corpusEntries = 0;
    /** Corpus fingerprint — identical for any worker count. */
    uint64_t corpusDigest = 0;
    /** DIR/<kernel>.corpus when CampaignOptions::corpusDir is set. */
    std::string corpusPath;

    bool foundFailure = false;
    ScheduleSpec firstFailure;
    /** 1-based ordinal of the first failing schedule in guided
     *  generation order — the guided "seeds to first failure". */
    uint64_t seedsToFirstFailure = 0;
    std::string firstFailureTag;

    /** The blind matrix's schedules-to-first-failure for the same
     *  target (matrix order, 1-based; 0 = the matrix found none) —
     *  the apples-to-apples budget the guided number is gated
     *  against. */
    uint64_t blindSeedsToFirstFailure = 0;

    uint64_t distinctEdges = 0;
    uint64_t coverageDigest = 0;

    /** Oracle verdicts over the guided schedules — folded into the
     *  campaign-wide totals, so the exit gate covers guided runs the
     *  same way it covers the blind matrix. */
    uint64_t divergences = 0;
    uint64_t unrecovered = 0;

    std::string error; ///< non-empty when corpus persistence failed
};

/** Per-target aggregation. */
struct TargetReport
{
    std::string name;

    uint64_t schedules = 0; ///< schedules actually run
    uint64_t skipped = 0;

    // Oracle 1: failing schedules of the unhardened program.
    uint64_t failingSchedules = 0;
    /** Failing schedules whose unhardened outcome was Hang — the
     *  deadlock slice of failingSchedules.  The fix validator requires
     *  this to stay zero on patched builds ("no new deadlocks"). */
    uint64_t deadlockSchedules = 0;
    uint64_t inconclusive = 0;
    std::vector<std::string> failureTags; ///< distinct, sorted
    bool foundFailure = false;
    ScheduleSpec firstFailure;
    /** 1-based seed ordinal of the first failing schedule within its
     *  (policy, depth) entry — the "seed budget" the acceptance bound
     *  talks about. */
    uint64_t firstFailureSeedBudget = 0;
    /** 1-based ordinal of the first failing schedule across the whole
     *  matrix for this target (schedules actually run, in matrix
     *  order) — what the guided pass's seeds-to-first-failure is
     *  compared against. */
    uint64_t firstFailureScheduleOrdinal = 0;

    // Oracle 2: hardened recovery.
    uint64_t hardenedSchedules = 0;
    uint64_t unrecovered = 0;
    bool hasUnrecovered = false;
    ScheduleSpec firstUnrecovered;
    /** Schedules where the unhardened leg failed and the hardened leg
     *  neither recovered nor surfaced the same failure kind.  The
     *  adversarial property tests require this to stay zero; here it
     *  is informational (unrecovered already covers mustRecover). */
    uint64_t hardenedDifferentFailure = 0;
    uint64_t hardenedInconclusive = 0;
    uint64_t chaosRuns = 0;
    uint64_t chaosRollbacks = 0;

    // Oracle 3: engine differential.
    uint64_t divergences = 0;
    bool hasDivergence = false;
    ScheduleSpec firstDivergence;
    std::string firstDivergenceMsg;

    uint64_t totalSteps = 0;

    /** Per-policy-entry aggregated hardened-leg metrics (only when
     *  CampaignOptions::collectMetrics): one ("pct:d2", registry) pair
     *  per opts.policies entry, in matrix order. */
    std::vector<std::pair<std::string, obs::MetricsRegistry>>
        policyMetrics;

    /**
     * @name Recovery-cost profile (only when
     * CampaignOptions::collectProfile): hardened-leg phase ticks and
     * per-episode recovery tax, aggregated in matrix order — identical
     * for any worker count, pinned by the campaign profile test.
     * @{
     */
    bool hasProfile = false;
    /** Target-wide aggregate (sum of policyProfiles). */
    obs::prof::ProfileAgg profile;
    /** One ("pct:d2", agg) pair per opts.policies entry. */
    std::vector<std::pair<std::string, obs::prof::ProfileAgg>>
        policyProfiles;
    /** Wall-clock cost per (policy, leg), summed in matrix order.
     *  The micros are nondeterministic by nature; the cell set and
     *  span counts are not. */
    std::vector<obs::prof::WallCell> wall;
    /** @} */

    /** Postmortem diagnosis of firstFailure (only when
     *  CampaignOptions::diagnoseFailures and foundFailure). */
    bool hasDiagnosis = false;
    obs::pm::RecoveryReport diagnosis;
    /** Which leg the diagnosis trace came from ("hardened" when the
     *  hardened build told a recovery story, else "unhardened"). */
    std::string diagnosisLeg;

    /** Files written by flush-on-abort for this target. */
    std::vector<std::string> abortArtifacts;

    /**
     * @name Replay corpus (only when CampaignOptions::replayLogDir and
     * foundFailure): the ddmin-minimised replay log of firstFailure.
     * @{
     */
    bool hasReplayLog = false;
    std::string replayLogPath;            ///< DIR/<kernel>.replay
    uint64_t replayOriginalSwitches = 0;  ///< before minimisation
    uint64_t replayMinimizedSwitches = 0; ///< after minimisation
    /** The minimised log also replayed faithfully under the Fused
     *  engine (record-under-Decoded, replay-under-Fused oracle). */
    bool replayCrossEngineVerified = false;
    std::string replayError; ///< non-empty when the pass failed
    /** @} */

    /**
     * @name Interleaving coverage (only when
     * CampaignOptions::collectCoverage): per-target aggregates over
     * the schedules' edge sets, computed in matrix order — identical
     * for any worker count, pinned by the campaign coverage test.
     * @{
     */
    bool hasCoverage = false;
    uint64_t coverageDistinctEdges = 0;
    /** Schedules that contributed at least one never-seen edge. */
    uint64_t coverageNovelSchedules = 0;
    /** coverageNovelSchedules / schedules (0 when no schedules ran). */
    double coverageNoveltyRate = 0;
    /** Distinct edges accumulated when the first failing schedule (in
     *  matrix order) finished; 0 when no failure was found. */
    uint64_t coverageEdgesAtFirstFailure = 0;
    /** FNV-1a over the sorted distinct edge keys — deterministic
     *  across runs and worker counts. */
    uint64_t coverageDigest = 0;
    /** (schedule#, distinctEdges) samples in matrix order, one per
     *  novel schedule (thinned to stay bounded). */
    std::vector<std::pair<uint64_t, uint64_t>> coverageGrowth;
    /** @} */

    /** Guided search pass results (only when
     *  CampaignOptions::searchMode == SearchMode::Guided). */
    bool hasGuided = false;
    GuidedSummary guided;

    /** Fix-synthesis pass results (filled by bench_explore after the
     *  campaign, never by runCampaign itself — see FixSummary). */
    FixSummary fix;
};

/** Whole-campaign result. */
struct CampaignReport
{
    std::vector<TargetReport> targets;

    uint64_t schedules = 0; ///< schedules run (sum over targets)
    uint64_t vmRuns = 0;    ///< individual VM executions (all legs)
    uint64_t totalSteps = 0;
    double seconds = 0;
    double schedulesPerSec = 0;

    uint64_t divergences = 0;
    uint64_t unrecovered = 0;

    /** Human-readable per-target summary, including the one-line repro
     *  command for the first divergence / unrecovered failure. */
    std::string summary() const;
};

/** Runs the full campaign matrix (targets x policies x seeds). */
CampaignReport runCampaign(const std::vector<Target> &targets,
                           const CampaignOptions &opts);

/** Runs a single (target, schedule) cell with all its legs — the
 *  --repro path for a triple printed by a campaign.  @p ins optionally
 *  attaches flight recorders to the Decoded legs. */
ScheduleOutcome runOneSchedule(const Target &t, const ScheduleSpec &s,
                               const CampaignOptions &opts,
                               const ScheduleInstruments *ins = nullptr);

/** The "pct:d2" / "random" label of one CampaignOptions::policies
 *  entry (a schedule token without the seed part). */
std::string policyLabel(vm::SchedPolicy policy, uint32_t depth);

/** Measures a clean RoundRobin run of @p m and returns its scheduling
 *  tick count (shared stores + sync ops, RunStats::schedTicks) — the
 *  natural PCT/PreemptBound sampling horizon for that program. */
uint64_t calibrateHorizon(const ir::Module &m, uint64_t maxSteps);

} // namespace conair::explore
