/**
 * @file
 * Dominator and post-dominator trees plus dominance frontiers, computed
 * with the Cooper-Harvey-Kennedy iterative algorithm.
 *
 * Used by mem2reg (phi placement), the SSA verifier, and control
 * dependence for ConAir's backward slicing (§4.2 of the paper).
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace conair::analysis {

/**
 * Dominator information for one function.  Construct with
 * @p post = false for dominators, true for post-dominators (computed on
 * the reversed CFG with a virtual exit joining all Ret/Unreachable
 * blocks).
 */
class DomTree
{
  public:
    explicit DomTree(const ir::Function &f, bool post = false);

    /** Immediate dominator, or nullptr for the root / unreachable. */
    ir::BasicBlock *idom(const ir::BasicBlock *bb) const;

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(const ir::BasicBlock *a, const ir::BasicBlock *b) const;

    /** True when @p a strictly dominates @p b. */
    bool
    strictlyDominates(const ir::BasicBlock *a,
                      const ir::BasicBlock *b) const
    {
        return a != b && dominates(a, b);
    }

    /**
     * Instruction-level dominance: does the definition point of @p a
     * dominate instruction @p b?  (Same block: program order.)
     */
    bool dominatesInst(const ir::Instruction *a,
                       const ir::Instruction *b) const;

    /** Dominance frontier of @p bb. */
    const std::vector<ir::BasicBlock *> &
    frontier(const ir::BasicBlock *bb) const;

    /** Children of @p bb in the dominator tree. */
    const std::vector<ir::BasicBlock *> &
    children(const ir::BasicBlock *bb) const;

    /** Blocks reachable from the root, in reverse post-order. */
    const std::vector<ir::BasicBlock *> &rpo() const { return rpo_; }

    bool
    isReachable(const ir::BasicBlock *bb) const
    {
        return index_.count(bb) != 0;
    }

  private:
    int indexOf(const ir::BasicBlock *bb) const;

    std::unordered_map<const ir::BasicBlock *, int> index_;
    std::vector<ir::BasicBlock *> rpo_;
    std::vector<int> idom_;                       // by rpo index
    std::vector<std::vector<ir::BasicBlock *>> frontier_;
    std::vector<std::vector<ir::BasicBlock *>> children_;
    std::vector<ir::BasicBlock *> byIndex_;
    std::vector<std::vector<int>> preds_;
    static const std::vector<ir::BasicBlock *> empty_;
};

/**
 * Full SSA validity check (defs dominate uses; phi operands dominate the
 * corresponding incoming edge).  Complements ir::verifyModule, which is
 * purely structural.
 */
bool verifySSA(const ir::Function &f, conair::DiagEngine &diags);

} // namespace conair::analysis
