/**
 * @file
 * CFG hygiene utilities shared by passes.
 */
#pragma once

#include "ir/function.h"
#include "ir/module.h"

namespace conair::analysis {

/**
 * Removes blocks not reachable from the entry, fixing up phis in the
 * surviving blocks.  Returns the number of blocks removed.
 */
unsigned removeUnreachableBlocks(ir::Function &f);

/** Runs removeUnreachableBlocks over the whole module. */
unsigned removeUnreachableBlocks(ir::Module &m);

/**
 * Splits the block containing @p inst immediately after it.  Everything
 * following @p inst moves into a fresh block (named from @p name); the
 * original block is terminated with an unconditional branch to it.
 * Phi nodes in the moved terminator's successors are retargeted.
 *
 * @return the new tail block.
 */
ir::BasicBlock *splitBlockAfter(ir::Instruction *inst,
                                const std::string &name);

/**
 * Splits the block containing @p inst immediately before it; @p inst
 * becomes the first instruction of the tail block.  @p inst must not be
 * a phi.
 */
ir::BasicBlock *splitBlockBefore(ir::Instruction *inst,
                                 const std::string &name);

} // namespace conair::analysis
