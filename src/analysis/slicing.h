/**
 * @file
 * Intra-procedural backward slicing, ConAir-style (paper §4.2, Fig 8).
 *
 * The slice follows SSA data dependences and (branch-condition) control
 * dependences.  Crucially it does *not* need alias analysis: inside a
 * ConAir reexecution region every write targets a virtual register, so
 * when the slicer reaches a Load (a read that is not from a virtual
 * register) it includes the load and stops — the producing store is
 * outside every idempotent region and therefore irrelevant.
 */
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace conair::analysis {

/** The result of a backward slice. */
struct SliceResult
{
    /** Instructions on the slice (loads included as endpoints). */
    std::unordered_set<const ir::Instruction *> insts;

    /** Function arguments the slice reaches (for §4.3 condition 2). */
    std::unordered_set<const ir::Argument *> args;

    bool
    contains(const ir::Instruction *inst) const
    {
        return insts.count(inst) != 0;
    }
};

/**
 * Branch-condition control dependences of each block, computed from the
 * post-dominator tree (Ferrante et al.): block X depends on terminator T
 * of block B iff B has a successor S with X post-dominating S while X
 * does not strictly post-dominate B.
 */
class ControlDeps
{
  public:
    explicit ControlDeps(const ir::Function &f);

    /** Terminators whose outcome controls whether @p bb executes. */
    const std::vector<const ir::Instruction *> &
    of(const ir::BasicBlock *bb) const;

  private:
    std::unordered_map<const ir::BasicBlock *,
                       std::vector<const ir::Instruction *>>
        deps_;
    static const std::vector<const ir::Instruction *> empty_;
};

/** Optional slicing extensions. */
struct SliceOptions
{
    /**
     * Trace data flow through stack-slot stores that lie inside
     * @ref regionInsts.  Sound without alias analysis because distinct
     * allocas never alias: a load from slot A can only be fed by
     * stores to slot A.  Used by the Fig 4 local-writes region design,
     * where regions may contain such stores; the base ConAir design
     * has none, so its slicer stops at every load (Fig 8).
     */
    bool traceLocalStores = false;

    /** Region membership for traceLocalStores (required with it). */
    const std::unordered_set<const ir::Instruction *> *regionInsts =
        nullptr;
};

/**
 * Computes the ConAir backward slice of @p seeds within @p f.
 *
 * @param f       the function being sliced
 * @param seeds   starting values (e.g. an assert condition, a checked
 *                pointer)
 * @param cdeps   precomputed control dependences for @p f
 * @param opts    optional extensions (local-store tracing)
 */
SliceResult backwardSlice(const ir::Function &f,
                          const std::vector<const ir::Value *> &seeds,
                          const ControlDeps &cdeps,
                          const SliceOptions &opts = {});

} // namespace conair::analysis
