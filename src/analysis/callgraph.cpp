#include "analysis/callgraph.h"

#include <algorithm>

namespace conair::analysis {

using ir::Builtin;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::ValueKind;

const std::vector<CallEdge> CallGraph::empty_;

CallGraph::CallGraph(const ir::Module &m)
{
    for (const auto &f : m.functions()) {
        for (const auto &bb : f->blocks()) {
            for (const auto &inst : bb->insts()) {
                if (inst->opcode() != Opcode::Call)
                    continue;
                if (inst->callee()) {
                    CallEdge e{f.get(), inst->callee(), inst.get()};
                    edges_.push_back(e);
                    callers_[inst->callee()].push_back(e);
                } else if (inst->builtin() == Builtin::ThreadCreate &&
                           inst->numOperands() >= 1 &&
                           inst->operand(0)->kind() ==
                               ValueKind::FuncAddr) {
                    Function *entry =
                        static_cast<ir::FuncAddr *>(inst->operand(0))
                            ->function();
                    if (std::find(threadEntries_.begin(),
                                  threadEntries_.end(),
                                  entry) == threadEntries_.end())
                        threadEntries_.push_back(entry);
                }
            }
        }
    }
}

const std::vector<CallEdge> &
CallGraph::callersOf(const Function *f) const
{
    auto it = callers_.find(f);
    return it == callers_.end() ? empty_ : it->second;
}

} // namespace conair::analysis
