#include "analysis/dominators.h"

#include <algorithm>

#include "ir/printer.h"
#include "support/diag.h"
#include "support/str.h"

namespace conair::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;

const std::vector<BasicBlock *> DomTree::empty_;

namespace {

/** A small CFG view that can be forward or reversed (for postdoms). */
struct Graph
{
    std::vector<BasicBlock *> nodes; // index 0 is the (virtual) root
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
};

Graph
buildGraph(const Function &f, bool post)
{
    Graph g;
    std::unordered_map<const BasicBlock *, int> idx;
    if (post)
        g.nodes.push_back(nullptr); // virtual exit as root
    for (const auto &bb : f.blocks()) {
        idx[bb.get()] = g.nodes.size();
        g.nodes.push_back(bb.get());
    }
    g.succs.resize(g.nodes.size());
    g.preds.resize(g.nodes.size());
    auto edge = [&](int a, int b) {
        g.succs[a].push_back(b);
        g.preds[b].push_back(a);
    };
    for (const auto &bb : f.blocks()) {
        int from = idx[bb.get()];
        for (BasicBlock *s : bb->successors()) {
            int to = idx[s];
            if (post)
                edge(to, from); // reversed
            else
                edge(from, to);
        }
        if (post && bb->successors().empty())
            edge(0, from); // virtual exit -> exit blocks (reversed CFG)
    }
    return g;
}

} // namespace

DomTree::DomTree(const Function &f, bool post)
{
    Graph g = buildGraph(f, post);
    if (g.nodes.empty())
        return;
    // Node 0 is the root either way: the entry block (forward) or the
    // virtual exit (post-dominators).
    const int root = 0;

    // Reverse post-order from the root.
    std::vector<int> order;
    std::vector<char> visited(g.nodes.size(), 0);
    std::vector<std::pair<int, size_t>> stack;
    stack.push_back({root, 0});
    visited[root] = 1;
    while (!stack.empty()) {
        auto &[n, i] = stack.back();
        if (i < g.succs[n].size()) {
            int s = g.succs[n][i++];
            if (!visited[s]) {
                visited[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            order.push_back(n);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());

    // Map graph nodes to dense RPO indices; unreachable nodes excluded.
    std::vector<int> rpoIndex(g.nodes.size(), -1);
    for (size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = int(i);

    byIndex_.resize(order.size());
    preds_.resize(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        BasicBlock *bb = g.nodes[order[i]];
        byIndex_[i] = bb;
        if (bb)
            index_[bb] = int(i);
        for (int p : g.preds[order[i]])
            if (rpoIndex[p] >= 0)
                preds_[i].push_back(rpoIndex[p]);
    }
    rpo_.clear();
    for (BasicBlock *bb : byIndex_)
        if (bb)
            rpo_.push_back(bb);

    // Cooper-Harvey-Kennedy iteration.
    int n = order.size();
    idom_.assign(n, -1);
    idom_[0] = 0;
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (a > b)
                a = idom_[a];
            while (b > a)
                b = idom_[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 1; i < n; ++i) {
            int new_idom = -1;
            for (int p : preds_[i]) {
                if (idom_[p] == -1)
                    continue;
                new_idom =
                    new_idom == -1 ? p : intersect(new_idom, p);
            }
            if (new_idom != -1 && idom_[i] != new_idom) {
                idom_[i] = new_idom;
                changed = true;
            }
        }
    }

    // Dominance frontiers.
    frontier_.assign(n, {});
    for (int i = 0; i < n; ++i) {
        if (preds_[i].size() < 2)
            continue;
        for (int p : preds_[i]) {
            int runner = p;
            while (runner != idom_[i] && runner != -1) {
                if (byIndex_[i]) // skip the virtual node
                    frontier_[runner].push_back(byIndex_[i]);
                runner = idom_[runner];
            }
        }
    }

    // Tree children.
    children_.assign(n, {});
    for (int i = 1; i < n; ++i) {
        if (idom_[i] >= 0 && byIndex_[i])
            children_[idom_[i]].push_back(byIndex_[i]);
    }
}

int
DomTree::indexOf(const BasicBlock *bb) const
{
    auto it = index_.find(bb);
    return it == index_.end() ? -1 : it->second;
}

BasicBlock *
DomTree::idom(const BasicBlock *bb) const
{
    int i = indexOf(bb);
    if (i <= 0)
        return nullptr;
    int d = idom_[i];
    return d < 0 ? nullptr : byIndex_[d];
}

bool
DomTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    int ia = indexOf(a);
    int ib = indexOf(b);
    if (ia < 0 || ib < 0)
        return false;
    while (ib > ia)
        ib = idom_[ib];
    return ib == ia;
}

bool
DomTree::dominatesInst(const Instruction *a, const Instruction *b) const
{
    const BasicBlock *ba = a->parent();
    const BasicBlock *bb = b->parent();
    if (ba != bb)
        return strictlyDominates(ba, bb);
    for (const auto &inst : ba->insts()) {
        if (inst.get() == a)
            return true;
        if (inst.get() == b)
            return false;
    }
    return false;
}

const std::vector<BasicBlock *> &
DomTree::frontier(const BasicBlock *bb) const
{
    int i = indexOf(bb);
    return i < 0 ? empty_ : frontier_[i];
}

const std::vector<BasicBlock *> &
DomTree::children(const BasicBlock *bb) const
{
    int i = indexOf(bb);
    return i < 0 ? empty_ : children_[i];
}

bool
verifySSA(const Function &f, DiagEngine &diags)
{
    DomTree dt(f);
    bool ok = true;
    for (const auto &bb : f.blocks()) {
        if (!dt.isReachable(bb.get()))
            continue; // dead blocks are structurally checked only
        for (const auto &inst : bb->insts()) {
            for (unsigned i = 0; i < inst->numOperands(); ++i) {
                const ir::Value *v = inst->operand(i);
                if (!v || v->kind() != ir::ValueKind::Instruction)
                    continue;
                auto *def = static_cast<const Instruction *>(v);
                if (!dt.isReachable(def->parent()))
                    continue;
                bool fine;
                if (inst->opcode() == ir::Opcode::Phi) {
                    // Def must dominate the end of the incoming block.
                    const BasicBlock *in = inst->incomingBlock(i);
                    fine = def->parent() == in
                               ? true
                               : dt.strictlyDominates(def->parent(), in);
                    if (def->parent() == in)
                        fine = true;
                } else {
                    fine = dt.dominatesInst(def, inst.get());
                }
                if (!fine) {
                    ok = false;
                    diags.error(inst->loc(),
                                strfmt("@%s: use not dominated by def [%s]",
                                       f.name().c_str(),
                                       ir::printInstruction(*inst).c_str()));
                }
            }
        }
    }
    return ok;
}

} // namespace conair::analysis
