#include "analysis/memory_class.h"

#include "support/diag.h"

namespace conair::analysis {

using ir::Instruction;
using ir::Opcode;
using ir::Value;
using ir::ValueKind;

AddrRoot
classifyAddress(const Value *addr)
{
    // Walk PtrAdd chains; the base pointer determines the class.
    while (addr->kind() == ValueKind::Instruction) {
        auto *inst = static_cast<const Instruction *>(addr);
        if (inst->opcode() == Opcode::PtrAdd) {
            addr = inst->operand(0);
            continue;
        }
        if (inst->opcode() == Opcode::Alloca)
            return AddrRoot::StackSlot;
        // Load results, call results and phis are pointer variables: the
        // address was fetched from memory or another computation, so the
        // paper treats dereferencing it as a potential segfault.
        return AddrRoot::PointerVar;
    }
    switch (addr->kind()) {
      case ValueKind::GlobalAddr:
        return AddrRoot::GlobalDirect;
      case ValueKind::ConstNull:
        return AddrRoot::Null;
      case ValueKind::Argument:
        // Pointer parameters are pointer variables (MozillaXP's
        // GetState(thd) pattern, Fig 10).
        return AddrRoot::PointerVar;
      default:
        return AddrRoot::PointerVar;
    }
}

bool
isMemAccess(const Instruction *inst)
{
    return inst->opcode() == Opcode::Load ||
           inst->opcode() == Opcode::Store;
}

const Value *
addressOf(const Instruction *inst)
{
    if (inst->opcode() == Opcode::Load)
        return inst->operand(0);
    if (inst->opcode() == Opcode::Store)
        return inst->operand(1);
    fatal("addressOf: not a memory access");
}

bool
isSharedRead(const Instruction *inst)
{
    if (inst->opcode() != Opcode::Load)
        return false;
    AddrRoot root = classifyAddress(inst->operand(0));
    return root == AddrRoot::GlobalDirect || root == AddrRoot::PointerVar;
}

bool
isPotentialSegfaultSite(const Instruction *inst)
{
    if (!isMemAccess(inst))
        return false;
    return classifyAddress(addressOf(inst)) == AddrRoot::PointerVar;
}

const ir::Global *
rootGlobal(const Value *addr)
{
    while (addr && addr->kind() == ValueKind::Instruction) {
        auto *inst = static_cast<const Instruction *>(addr);
        if (inst->opcode() != Opcode::PtrAdd)
            return nullptr;
        addr = inst->operand(0);
    }
    if (addr && addr->kind() == ValueKind::GlobalAddr)
        return static_cast<const ir::GlobalAddr *>(addr)->global();
    return nullptr;
}

bool
accessesGlobal(const Instruction *inst, const ir::Global *g)
{
    return isMemAccess(inst) && rootGlobal(addressOf(inst)) == g;
}

} // namespace conair::analysis
