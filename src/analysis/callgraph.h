/**
 * @file
 * Direct call graph over a module.  Used by ConAir's inter-procedural
 * recovery (§4.3) to find the callers of a function, and by the harness
 * to find thread entry points.
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/module.h"

namespace conair::analysis {

/** One direct call edge. */
struct CallEdge
{
    ir::Function *caller;
    ir::Function *callee;
    ir::Instruction *site;
};

/** The module-level call graph (direct calls + thread spawns). */
class CallGraph
{
  public:
    explicit CallGraph(const ir::Module &m);

    /** Call sites whose callee is @p f (direct calls only). */
    const std::vector<CallEdge> &callersOf(const ir::Function *f) const;

    /** Functions passed to thread_create (parallel entry points). */
    const std::vector<ir::Function *> &threadEntries() const
    {
        return threadEntries_;
    }

    /** All edges. */
    const std::vector<CallEdge> &edges() const { return edges_; }

  private:
    std::vector<CallEdge> edges_;
    std::unordered_map<const ir::Function *, std::vector<CallEdge>>
        callers_;
    std::vector<ir::Function *> threadEntries_;
    static const std::vector<CallEdge> empty_;
};

} // namespace conair::analysis
