#include "analysis/cfg_utils.h"

#include <unordered_set>
#include <vector>

namespace conair::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;

unsigned
removeUnreachableBlocks(Function &f)
{
    if (f.blocks().empty())
        return 0;
    std::unordered_set<BasicBlock *> reachable;
    std::vector<BasicBlock *> work{f.entry()};
    reachable.insert(f.entry());
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        for (BasicBlock *s : bb->successors()) {
            if (reachable.insert(s).second)
                work.push_back(s);
        }
    }

    // Fix phis: drop incoming edges from doomed blocks.
    for (auto &bb : f.blocks()) {
        if (!reachable.count(bb.get()))
            continue;
        for (auto &inst : bb->insts()) {
            if (inst->opcode() != Opcode::Phi)
                break;
            for (unsigned i = 0; i < inst->numBlockOps();) {
                if (!reachable.count(inst->blockOp(i)))
                    inst->removeIncoming(inst->blockOp(i));
                else
                    ++i;
            }
        }
    }

    // Break def-use edges out of doomed blocks, then erase them.
    unsigned removed = 0;
    for (auto &bb : f.blocks()) {
        if (reachable.count(bb.get()))
            continue;
        for (auto &inst : bb->insts()) {
            inst->dropAllOperands();
            // Uses of this value can only be in other unreachable blocks;
            // point them at a harmless placeholder so teardown is safe.
            if (inst->hasUses()) {
                ir::Value *placeholder =
                    inst->type() == ir::Type::F64
                        ? static_cast<ir::Value *>(
                              f.parent()->getFloat(0.0))
                        : inst->type() == ir::Type::Ptr
                              ? static_cast<ir::Value *>(
                                    f.parent()->getNull())
                              : static_cast<ir::Value *>(
                                    f.parent()->getInt(0, inst->type()));
                inst->replaceAllUsesWith(placeholder);
            }
        }
    }
    for (auto it = f.blocks().begin(); it != f.blocks().end();) {
        if (!reachable.count(it->get())) {
            it = f.blocks().erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

unsigned
removeUnreachableBlocks(ir::Module &m)
{
    unsigned total = 0;
    for (const auto &f : m.functions())
        total += removeUnreachableBlocks(*f);
    return total;
}

namespace {

/** Moves [first, end) of @p from into @p to and fixes the plumbing. */
BasicBlock *
splitAt(BasicBlock *from, BasicBlock::iterator first,
        const std::string &name)
{
    Function *fn = from->parent();
    BasicBlock *tail = fn->insertBlockAfter(from, name);

    // Move the remaining instructions (including the terminator).
    auto &src = from->insts();
    auto &dst = tail->insts();
    for (auto it = first; it != src.end();) {
        auto next = std::next(it);
        (*it)->setParent(tail);
        dst.push_back(std::move(*it));
        src.erase(it);
        it = next;
    }

    // Successor phis referenced `from`; the edge now comes from `tail`.
    for (BasicBlock *succ : tail->successors()) {
        for (auto &inst : succ->insts()) {
            if (inst->opcode() != Opcode::Phi)
                break;
            for (unsigned i = 0; i < inst->numBlockOps(); ++i)
                if (inst->blockOp(i) == from)
                    inst->setBlockOp(i, tail);
        }
    }

    // Terminate the head with a fall-through branch.
    auto br = std::make_unique<Instruction>(Opcode::Br, ir::Type::Void);
    br->addBlockOp(tail);
    from->append(std::move(br));
    return tail;
}

} // namespace

BasicBlock *
splitBlockAfter(Instruction *inst, const std::string &name)
{
    BasicBlock *bb = inst->parent();
    auto it = bb->find(inst);
    return splitAt(bb, std::next(it), name);
}

BasicBlock *
splitBlockBefore(Instruction *inst, const std::string &name)
{
    BasicBlock *bb = inst->parent();
    return splitAt(bb, bb->find(inst), name);
}

} // namespace conair::analysis
