/**
 * @file
 * SSA promotion of scalar allocas ("mem2reg").
 *
 * The MiniC front-end emits every local as an alloca with loads and
 * stores.  This pass promotes the promotable ones into SSA virtual
 * registers — exactly the compiler behaviour the paper relies on: a
 * source region like `x = x + 1` becomes idempotent in bitcode through
 * variable renaming (Fig 3), while address-taken locals and arrays stay
 * in memory and their stores remain idempotency-destroying.
 */
#pragma once

#include "ir/function.h"
#include "ir/module.h"

namespace conair::analysis {

/** Statistics returned by the promotion pass. */
struct Mem2RegStats
{
    unsigned promoted = 0;   ///< allocas rewritten into SSA registers
    unsigned unpromoted = 0; ///< allocas left in memory (escaped / arrays)
    unsigned phisInserted = 0;
};

/** True when @p alloca_inst can be promoted to SSA form. */
bool isPromotable(const ir::Instruction *alloca_inst);

/** Promotes all promotable allocas in @p f. */
Mem2RegStats promoteToSSA(ir::Function &f);

/** Runs promoteToSSA over every function in @p m. */
Mem2RegStats promoteModuleToSSA(ir::Module &m);

} // namespace conair::analysis
