#include "analysis/slicing.h"

#include <algorithm>

namespace conair::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;
using ir::ValueKind;

const std::vector<const Instruction *> ControlDeps::empty_;

ControlDeps::ControlDeps(const Function &f)
{
    DomTree pdt(f, /*post=*/true);
    for (const auto &bb : f.blocks()) {
        const Instruction *term = bb->terminator();
        if (!term || term->opcode() != Opcode::CondBr)
            continue;
        const BasicBlock *stop = pdt.idom(bb.get());
        for (BasicBlock *succ : bb->successors()) {
            // Every X on the post-dominator path from succ up to (but
            // excluding) ipdom(bb) is control dependent on bb's
            // terminator; bb itself can appear (loop headers).
            const BasicBlock *x = succ;
            while (x && x != stop) {
                auto &vec = deps_[x];
                if (std::find(vec.begin(), vec.end(), term) == vec.end())
                    vec.push_back(term);
                x = pdt.idom(x);
            }
        }
    }
}

const std::vector<const Instruction *> &
ControlDeps::of(const BasicBlock *bb) const
{
    auto it = deps_.find(bb);
    return it == deps_.end() ? empty_ : it->second;
}

namespace {

/** The alloca an address expression is rooted at, if any. */
const Instruction *
allocaRoot(const Value *addr)
{
    while (addr->kind() == ValueKind::Instruction) {
        auto *inst = static_cast<const Instruction *>(addr);
        if (inst->opcode() == Opcode::PtrAdd) {
            addr = inst->operand(0);
            continue;
        }
        return inst->opcode() == Opcode::Alloca ? inst : nullptr;
    }
    return nullptr;
}

} // namespace

SliceResult
backwardSlice(const Function &f, const std::vector<const Value *> &seeds,
              const ControlDeps &cdeps, const SliceOptions &opts)
{
    (void)f;
    SliceResult result;
    std::vector<const Value *> work(seeds.begin(), seeds.end());
    std::unordered_set<const Value *> queued(seeds.begin(), seeds.end());

    auto push = [&](const Value *v) {
        if (v && queued.insert(v).second)
            work.push_back(v);
    };

    while (!work.empty()) {
        const Value *v = work.back();
        work.pop_back();

        if (v->kind() == ValueKind::Argument) {
            result.args.insert(static_cast<const ir::Argument *>(v));
            continue;
        }
        if (v->kind() != ValueKind::Instruction)
            continue; // constants carry no dependence

        auto *inst = static_cast<const Instruction *>(v);
        if (!result.insts.insert(inst).second)
            continue;

        // Control dependences: the branches deciding whether this
        // instruction runs.
        for (const Instruction *term : cdeps.of(inst->parent())) {
            if (result.insts.insert(term).second && term->numOperands())
                push(term->operand(0));
        }

        // Data dependences.  A Load reads memory, not a virtual
        // register: include it but stop tracking (Fig 8).  Its address
        // is likewise not followed — except under the local-writes
        // extension, where in-region stores to the same alloca feed it.
        if (inst->opcode() == Opcode::Load) {
            if (opts.traceLocalStores && opts.regionInsts) {
                const Instruction *root =
                    allocaRoot(inst->operand(0));
                if (root) {
                    for (const Instruction *cand : *opts.regionInsts) {
                        if (cand->opcode() != Opcode::Store)
                            continue;
                        if (allocaRoot(cand->operand(1)) == root) {
                            result.insts.insert(cand);
                            push(cand->operand(0));
                        }
                    }
                }
            }
            continue;
        }
        for (unsigned i = 0; i < inst->numOperands(); ++i)
            push(inst->operand(i));
    }
    return result;
}

} // namespace conair::analysis
