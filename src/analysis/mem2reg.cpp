#include "analysis/mem2reg.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg_utils.h"
#include "analysis/dominators.h"
#include "support/diag.h"

namespace conair::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

bool
isPromotable(const Instruction *alloca_inst)
{
    if (alloca_inst->opcode() != Opcode::Alloca)
        return false;
    if (alloca_inst->allocaSize() != 1)
        return false; // arrays stay in memory
    for (const ir::Use &u : alloca_inst->uses()) {
        const Instruction *user = u.user;
        if (user->opcode() == Opcode::Load && u.index == 0)
            continue;
        if (user->opcode() == Opcode::Store && u.index == 1)
            continue;
        // Any other use (store of the pointer, ptradd, call argument,
        // phi, compare) means the address escapes.
        return false;
    }
    return true;
}

namespace {

/** Infers the value type stored in a promotable alloca. */
Type
slotType(const Instruction *alloca_inst)
{
    for (const ir::Use &u : alloca_inst->uses()) {
        if (u.user->opcode() == Opcode::Load)
            return u.user->type();
        if (u.user->opcode() == Opcode::Store && u.user->operand(0))
            return u.user->operand(0)->type();
    }
    return Type::I64; // store/load-free slot: type is irrelevant
}

class Promoter
{
  public:
    Promoter(Function &f, Mem2RegStats &stats) : f_(f), dt_(f),
        stats_(stats)
    {}

    void
    run()
    {
        collect();
        if (allocas_.empty())
            return;
        insertPhis();
        rename();
        cleanup();
    }

  private:
    void
    collect()
    {
        for (auto &bb : f_.blocks()) {
            for (auto &inst : bb->insts()) {
                if (inst->opcode() != Opcode::Alloca)
                    continue;
                if (isPromotable(inst.get())) {
                    varIndex_[inst.get()] = allocas_.size();
                    allocas_.push_back(inst.get());
                    ++stats_.promoted;
                } else {
                    ++stats_.unpromoted;
                }
            }
        }
        types_.resize(allocas_.size());
        for (size_t i = 0; i < allocas_.size(); ++i)
            types_[i] = slotType(allocas_[i]);
    }

    void
    insertPhis()
    {
        phiVar_.clear();
        for (size_t v = 0; v < allocas_.size(); ++v) {
            // Blocks containing a store to this variable.
            std::vector<BasicBlock *> defs;
            for (const ir::Use &u : allocas_[v]->uses())
                if (u.user->opcode() == Opcode::Store)
                    defs.push_back(u.user->parent());
            // Iterated dominance frontier.
            std::unordered_set<BasicBlock *> has_phi;
            std::vector<BasicBlock *> work = defs;
            while (!work.empty()) {
                BasicBlock *bb = work.back();
                work.pop_back();
                for (BasicBlock *df : dt_.frontier(bb)) {
                    if (has_phi.count(df))
                        continue;
                    has_phi.insert(df);
                    auto phi = std::make_unique<Instruction>(Opcode::Phi,
                                                             types_[v]);
                    Instruction *placed =
                        df->insertBefore(df->front(), std::move(phi));
                    phiVar_[placed] = v;
                    ++stats_.phisInserted;
                    work.push_back(df);
                }
            }
        }
    }

    void
    rename()
    {
        std::vector<Value *> incoming(allocas_.size(), nullptr);
        renameBlock(f_.entry(), incoming);
    }

    Value *
    defaultValue(size_t v)
    {
        // A load before any store reads an undefined local; model it as
        // zero of the right type (MiniC zero-initialises locals anyway).
        switch (types_[v]) {
          case Type::F64:
            return f_.parent()->getFloat(0.0);
          case Type::Ptr:
            return f_.parent()->getNull();
          case Type::I1:
            return f_.parent()->getBool(false);
          default:
            return f_.parent()->getInt(0);
        }
    }

    void
    renameBlock(BasicBlock *bb, std::vector<Value *> current)
    {
        // Phis in this block define new current values.
        for (auto &inst : bb->insts()) {
            if (inst->opcode() != Opcode::Phi)
                break;
            auto it = phiVar_.find(inst.get());
            if (it != phiVar_.end())
                current[it->second] = inst.get();
        }
        // Rewrite loads, record stores.
        std::vector<Instruction *> dead;
        for (auto &inst : bb->insts()) {
            if (inst->opcode() == Opcode::Load) {
                auto vi = varIndex_.find(inst->operand(0));
                if (vi == varIndex_.end())
                    continue;
                Value *cur = current[vi->second];
                if (!cur)
                    cur = defaultValue(vi->second);
                inst->replaceAllUsesWith(cur);
                dead.push_back(inst.get());
            } else if (inst->opcode() == Opcode::Store) {
                auto vi = varIndex_.find(inst->operand(1));
                if (vi == varIndex_.end())
                    continue;
                current[vi->second] = inst->operand(0);
                dead.push_back(inst.get());
            }
        }
        for (Instruction *inst : dead)
            bb->erase(inst);
        // Fill successor phis.
        for (BasicBlock *succ : bb->successors()) {
            for (auto &inst : succ->insts()) {
                if (inst->opcode() != Opcode::Phi)
                    break;
                auto it = phiVar_.find(inst.get());
                if (it == phiVar_.end())
                    continue;
                Value *cur = current[it->second];
                if (!cur)
                    cur = defaultValue(it->second);
                inst->addIncoming(cur, bb);
            }
        }
        // Recurse over dominator-tree children.
        for (BasicBlock *child : dt_.children(bb))
            renameBlock(child, current);
    }

    void
    cleanup()
    {
        // Drop the now-unused allocas (and phis that ended up unused in
        // unreachable incoming positions stay — they are still valid).
        for (Instruction *a : allocas_) {
            if (a->hasUses())
                fatal("mem2reg: promoted alloca still has uses");
            a->parent()->erase(a);
        }
    }

    Function &f_;
    DomTree dt_;
    Mem2RegStats &stats_;
    std::vector<Instruction *> allocas_;
    std::vector<Type> types_;
    std::unordered_map<const Value *, size_t> varIndex_;
    std::unordered_map<const Instruction *, size_t> phiVar_;
};

} // namespace

Mem2RegStats
promoteToSSA(Function &f)
{
    // Promotion renames along the dominator tree, which only covers
    // reachable blocks; prune dead ones first so no stale load/store of a
    // promoted slot survives.
    removeUnreachableBlocks(f);
    Mem2RegStats stats;
    Promoter(f, stats).run();
    return stats;
}

Mem2RegStats
promoteModuleToSSA(ir::Module &m)
{
    Mem2RegStats total;
    for (const auto &f : m.functions()) {
        Mem2RegStats s = promoteToSSA(*f);
        total.promoted += s.promoted;
        total.unpromoted += s.unpromoted;
        total.phisInserted += s.phisInserted;
    }
    return total;
}

} // namespace conair::analysis
