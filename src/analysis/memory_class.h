/**
 * @file
 * Classification of memory addresses and accesses.
 *
 * ConAir needs two static distinctions (paper §3.1.1 and §4.2):
 *  - which dereferences go through a *heap/global pointer variable*
 *    (potential segmentation-fault sites, Fig 5c), and
 *  - which loads read *global/heap* state (shared reads that make a
 *    failure site recoverable).
 * Both reduce to tracing the SSA root of an address expression.
 */
#pragma once

#include "ir/instruction.h"

namespace conair::analysis {

/** Where an address expression ultimately comes from. */
enum class AddrRoot {
    StackSlot,    ///< rooted at an alloca: a frame-local access
    GlobalDirect, ///< the constant address of a global (cannot fault)
    PointerVar,   ///< loaded/computed pointer value: heap or global data
                  ///< reached through a pointer variable (may fault)
    Null,         ///< literally null (will fault)
};

/** Traces @p addr through PtrAdd chains to its root. */
AddrRoot classifyAddress(const ir::Value *addr);

/** True when @p inst is a Load or Store. */
bool isMemAccess(const ir::Instruction *inst);

/** The address operand of a Load/Store; fatal() otherwise. */
const ir::Value *addressOf(const ir::Instruction *inst);

/**
 * True when @p inst is a load that reads global or heap state — i.e. a
 * shared-memory read in the paper's sense (§4.2: a recovery region must
 * contain one for reexecution to be able to change the outcome).
 */
bool isSharedRead(const ir::Instruction *inst);

/**
 * True when @p inst is a potential segmentation-fault site: a Load or
 * Store whose address is a heap/global *pointer variable* dereference.
 */
bool isPotentialSegfaultSite(const ir::Instruction *inst);

/**
 * Traces @p addr through PtrAdd chains to the Global it directly
 * addresses, or nullptr when the root is not a GlobalAddr (stack slot,
 * pointer variable, null).  The shared root of the postmortem engine's
 * racy-pair naming and fix synthesis' access matching: both must agree
 * on which accesses touch a diagnosed global.
 */
const ir::Global *rootGlobal(const ir::Value *addr);

/** True when @p inst is a Load/Store whose address roots at @p g. */
bool accessesGlobal(const ir::Instruction *inst, const ir::Global *g);

} // namespace conair::analysis
