#include "conair/interproc.h"

#include <unordered_set>

#include "analysis/slicing.h"

namespace conair::ca {

using analysis::CallEdge;
using analysis::ControlDeps;
using analysis::SliceResult;
using ir::Function;
using ir::Instruction;

namespace {

/** Argument indices of @p fn that appear in @p slice. */
std::vector<unsigned>
criticalArgIndices(const Function *fn, const SliceResult &slice)
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < fn->numArgs(); ++i)
        if (slice.args.count(fn->arg(i)))
            out.push_back(i);
    return out;
}

class Explorer
{
  public:
    Explorer(const FailureSite &site, const analysis::CallGraph &cg,
             const RegionPolicy &policy, const InterprocOptions &opts)
        : site_(site), cg_(cg), policy_(policy), opts_(opts)
    {}

    InterprocDecision
    run(const std::vector<unsigned> &critical_args)
    {
        InterprocDecision d;
        const Function *foo = site_.inst->parent()->parent();
        if (cg_.callersOf(foo).empty())
            return d; // no callers to host the reexecution point
        bool gave_up = false;
        std::vector<Position> points =
            explore(foo, critical_args, 1, gave_up);
        if (gave_up) {
            d.gaveUp = true;
            return d;
        }
        d.promoted = true;
        d.callerPoints = std::move(points);
        d.depthUsed = depthUsed_;
        return d;
    }

  private:
    /**
     * Collects reexecution points across every caller of @p fn.  Sets
     * @p gave_up when some chain is still clean at the depth limit
     * (the paper then abandons the whole attempt for this site).
     */
    std::vector<Position>
    explore(const Function *fn,
            const std::vector<unsigned> &critical_args, unsigned depth,
            bool &gave_up)
    {
        std::vector<Position> points;
        depthUsed_ = std::max(depthUsed_, depth);
        for (const CallEdge &edge : cg_.callersOf(fn)) {
            if (gave_up)
                return points;
            Region creg = computeCallerRegion(edge.site, policy_);

            // Find the caller's own critical arguments: which caller
            // parameters flow into the critical operands of this call.
            ControlDeps cdeps(*edge.caller);
            std::vector<const ir::Value *> seeds;
            if (site_.kind == FailureKind::Deadlock) {
                // Deadlocks have no data-flow condition; the call site
                // itself anchors the walk.
            } else {
                for (unsigned idx : critical_args)
                    if (idx < edge.site->numOperands())
                        seeds.push_back(edge.site->operand(idx));
            }
            SliceResult cslice =
                analysis::backwardSlice(*edge.caller, seeds, cdeps);

            bool recoverable_here =
                site_.kind == FailureKind::Deadlock
                    ? regionHasLockAcquisition(creg, nullptr)
                    : regionHasQualifyingSharedRead(cslice, creg);

            bool can_climb =
                creg.cleanToEntry && !recoverable_here &&
                !cg_.callersOf(edge.caller).empty() &&
                (site_.kind == FailureKind::Deadlock ||
                 !criticalArgIndices(edge.caller, cslice).empty());

            if (can_climb) {
                if (depth >= opts_.maxDepth) {
                    // Still clean at the limit: the paper reverts the
                    // whole site to intra-procedural recovery.
                    gave_up = true;
                    return points;
                }
                std::vector<Position> up =
                    explore(edge.caller,
                            criticalArgIndices(edge.caller, cslice),
                            depth + 1, gave_up);
                if (gave_up)
                    return points;
                points.insert(points.end(), up.begin(), up.end());
            } else {
                points.insert(points.end(), creg.points.begin(),
                              creg.points.end());
            }
        }
        return points;
    }

    const FailureSite &site_;
    const analysis::CallGraph &cg_;
    const RegionPolicy &policy_;
    const InterprocOptions &opts_;
    unsigned depthUsed_ = 0;
};

} // namespace

InterprocDecision
analyzeInterproc(const FailureSite &site, const Region &region,
                 const analysis::CallGraph &cg,
                 const RegionPolicy &policy,
                 const InterprocOptions &opts)
{
    InterprocDecision none;
    if (!region.cleanToEntry)
        return none; // condition (1)

    const Function *foo = site.inst->parent()->parent();
    std::vector<unsigned> critical;
    if (site.kind != FailureKind::Deadlock) {
        // Condition (2): a critical parameter must be on the slice.
        ControlDeps cdeps(*foo);
        SliceResult slice = analysis::backwardSlice(
            *foo, failureConditionSeeds(site, cdeps), cdeps);
        critical = criticalArgIndices(foo, slice);
        if (critical.empty())
            return none;
    }
    return Explorer(site, cg, policy, opts).run(critical);
}

} // namespace conair::ca
