#include "conair/driver.h"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "analysis/callgraph.h"
#include "analysis/slicing.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/diag.h"

namespace conair::ca {

using analysis::CallGraph;
using analysis::ControlDeps;
using ir::Function;

namespace {

/** Per-function ControlDeps cache (postdominators are not free). */
class CDepsCache
{
  public:
    const ControlDeps &
    of(const Function *f)
    {
        auto it = cache_.find(f);
        if (it == cache_.end())
            it = cache_.emplace(f, ControlDeps(*f)).first;
        return it->second;
    }

  private:
    std::unordered_map<const Function *, ControlDeps> cache_;
};

struct SiteWork
{
    FailureSite site;
    std::string tag; ///< captured pre-transform (conversion may erase
                     ///< the site instruction, e.g. lock -> timedlock)
    Region region;
    bool recoverable = true;
    bool promoted = false;
    bool gaveUp = false;
    std::vector<Position> points; ///< final positions for this site
};

} // namespace

ConAirReport
applyConAir(ir::Module &m, const ConAirOptions &opts)
{
    ConAirReport report;
    auto t0 = std::chrono::steady_clock::now();

    // Pass 1 (§3.1): failure sites.
    FailureSiteOptions fso;
    fso.mode = opts.mode;
    fso.fixTags = opts.fixTags;
    std::vector<FailureSite> sites = identifyFailureSites(m, fso);
    report.identified = countByKind(sites);

    CallGraph cg(m);
    CDepsCache cdeps;
    InterprocOptions ipo;
    ipo.maxDepth = opts.interprocDepth;

    // Pass 2 (§3.2): reexecution regions, then §4.3 and §4.2 per site.
    std::vector<SiteWork> work;
    std::unordered_set<Position, PositionHash> removed_entries;
    for (const FailureSite &site : sites) {
        SiteWork w;
        w.site = site;
        w.tag = site.inst->tag();
        w.region = computeRegion(site.inst, opts.regionPolicy);
        const Function *fn = site.inst->parent()->parent();

        Recoverability intra = Recoverability::Recoverable;
        if (opts.optimize || opts.interproc)
            intra = classifyRecoverability(site, w.region,
                                           cdeps.of(fn),
                                           opts.regionPolicy);

        // §4.3 runs first: it targets exactly the sites whose
        // intra-procedural region is clean to the entry yet useless.
        if (opts.interproc && w.region.cleanToEntry &&
            intra != Recoverability::Recoverable) {
            InterprocDecision d = analyzeInterproc(
                site, w.region, cg, opts.regionPolicy, ipo);
            if (d.promoted) {
                w.promoted = true;
                w.points = d.callerPoints;
                // Footnote 5: the foo-entry point is removed; other
                // sites sharing it ride along inter-procedurally.
                removed_entries.insert(
                    Position{fn->entry(), nullptr});
            } else if (d.gaveUp) {
                w.gaveUp = true;
            }
        }
        if (!w.promoted) {
            if (opts.optimize &&
                intra != Recoverability::Recoverable) {
                w.recoverable = false;
                ++report.sitesDroppedByOptimizer;
            }
            w.points = w.region.points;
        }
        work.push_back(std::move(w));
    }

    // Deduplicate reexecution points across the surviving sites.
    std::unordered_map<Position, PositionInfo, PositionHash> points;
    for (const SiteWork &w : work) {
        if (!w.recoverable)
            continue;
        for (const Position &p : w.points) {
            if (removed_entries.count(p))
                continue;
            PositionInfo &info = points[p];
            if (w.site.kind == FailureKind::Deadlock)
                info.usedByDeadlock = true;
            else
                info.usedByNonDeadlock = true;
        }
    }

    // Pass 3 (§3.3): the code transformation.
    TransformPlan plan;
    plan.lockTimeout = opts.lockTimeout;
    plan.localCheckpoints = opts.regionPolicy.allowLocalWrites;
    for (const SiteWork &w : work) {
        if (!w.recoverable && w.site.kind == FailureKind::Deadlock)
            continue; // reverted to a plain lock: nothing to transform
        SitePlan sp;
        sp.site = w.site;
        sp.recoverable = w.recoverable;
        sp.interproc = w.promoted;
        plan.sites.push_back(sp);
    }
    for (const auto &[pos, info] : points)
        plan.points.push_back({pos, info});
    report.transform = applyTransform(m, plan);

    auto t1 = std::chrono::steady_clock::now();
    report.analysisMicros =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    // Reporting.
    report.staticReexecPoints = points.size();
    for (const auto &[pos, info] : points) {
        (void)pos;
        if (info.usedByDeadlock)
            ++report.deadlockPoints;
        if (info.usedByNonDeadlock)
            ++report.nonDeadlockPoints;
    }
    std::vector<FailureSite> kept;
    for (const SiteWork &w : work) {
        SiteReport sr;
        sr.tag = w.tag;
        sr.kind = w.site.kind;
        sr.hasOracle = w.site.hasOracle;
        sr.recoverable = w.recoverable;
        sr.interproc = w.promoted;
        sr.interprocGaveUp = w.gaveUp;
        sr.numPoints = w.points.size();
        report.sites.push_back(std::move(sr));
        if (w.recoverable)
            kept.push_back(w.site);
        if (w.promoted)
            ++report.interprocSites;
    }
    report.recoverable = countByKind(kept);

    if (opts.verifyAfter) {
        DiagEngine diags;
        if (!ir::verifyModule(m, diags)) {
            fatal("ConAir transform produced invalid IR:\n" +
                  diags.str() + ir::printModule(m));
        }
    }
    return report;
}

} // namespace conair::ca
