#include "conair/failure_sites.h"

#include <algorithm>

#include "analysis/memory_class.h"

namespace conair::ca {

using ir::Builtin;
using ir::Instruction;
using ir::Opcode;

const char *
failureKindName(FailureKind k)
{
    switch (k) {
      case FailureKind::Assertion: return "assertion";
      case FailureKind::WrongOutput: return "wrong-output";
      case FailureKind::Segfault: return "segfault";
      case FailureKind::Deadlock: return "deadlock";
    }
    return "?";
}

namespace {

/** Classifies one instruction as a potential failure site, if any. */
bool
classify(Instruction *inst, FailureKind &kind, bool &has_oracle)
{
    if (inst->opcode() == Opcode::Call) {
        switch (inst->builtin()) {
          case Builtin::AssertFail:
            kind = FailureKind::Assertion;
            has_oracle = false;
            return true;
          case Builtin::OracleFail:
            kind = FailureKind::WrongOutput;
            has_oracle = true;
            return true;
          case Builtin::PrintI64:
          case Builtin::PrintF64:
          case Builtin::PrintStr:
            kind = FailureKind::WrongOutput;
            has_oracle = false;
            return true;
          case Builtin::MutexLock:
            kind = FailureKind::Deadlock;
            has_oracle = false;
            return true;
          default:
            return false;
        }
    }
    if (analysis::isPotentialSegfaultSite(inst)) {
        kind = FailureKind::Segfault;
        has_oracle = false;
        return true;
    }
    return false;
}

} // namespace

std::vector<FailureSite>
identifyFailureSites(ir::Module &m, const FailureSiteOptions &opts)
{
    std::vector<FailureSite> sites;
    int64_t next_id = 1;
    for (const auto &f : m.functions()) {
        for (const auto &bb : f->blocks()) {
            for (const auto &inst : bb->insts()) {
                FailureKind kind;
                bool has_oracle;
                if (!classify(inst.get(), kind, has_oracle))
                    continue;
                if (opts.mode == Mode::Fix) {
                    bool wanted =
                        std::find(opts.fixTags.begin(),
                                  opts.fixTags.end(),
                                  inst->tag()) != opts.fixTags.end();
                    if (!wanted)
                        continue;
                }
                sites.push_back(
                    {inst.get(), kind, next_id++, has_oracle});
            }
        }
    }
    return sites;
}

SiteCounts
countByKind(const std::vector<FailureSite> &sites)
{
    SiteCounts c;
    for (const FailureSite &s : sites) {
        switch (s.kind) {
          case FailureKind::Assertion: ++c.assertion; break;
          case FailureKind::WrongOutput: ++c.wrongOutput; break;
          case FailureKind::Segfault: ++c.segfault; break;
          case FailureKind::Deadlock: ++c.deadlock; break;
        }
    }
    return c;
}

} // namespace conair::ca
