/**
 * @file
 * Inter-procedural recovery analysis (paper §4.3).
 *
 * A failure site f inside function foo is promoted to inter-procedural
 * recovery when (1) no path from foo's entry to f contains an
 * idempotency-destroying operation, (2) for non-deadlock sites at least
 * one of foo's parameters is on f's backward slice (the critical
 * parameters — the only channel through which a caller can change f's
 * outcome, since regions contain no shared writes), and (3) the
 * intra-procedural region is unrecoverable per §4.2.  Reexecution
 * points then move into the callers, recursively up to a configurable
 * depth (default 3); if the walk is still "clean" at the depth limit,
 * ConAir gives the attempt up and keeps the point at foo's entry.
 */
#pragma once

#include "analysis/callgraph.h"
#include "conair/optimizer.h"
#include "conair/regions.h"

namespace conair::ca {

/** Result of the §4.3 analysis for one failure site. */
struct InterprocDecision
{
    /** Reexecution moved into the caller(s). */
    bool promoted = false;

    /** Positions in caller functions replacing the foo-entry point. */
    std::vector<Position> callerPoints;

    /** Levels actually climbed (1 = direct caller). */
    unsigned depthUsed = 0;

    /** Hit the depth limit while still clean: revert to foo entry. */
    bool gaveUp = false;
};

/** Tunables for the analysis. */
struct InterprocOptions
{
    unsigned maxDepth = 3; ///< paper default: up to foo's 3rd caller
};

/**
 * Runs the §4.3 analysis for @p site, whose intra-procedural region is
 * @p region.  Pre-condition: the caller established conditions (1) and
 * (3) — region.cleanToEntry and intra-procedural unrecoverability.
 * Condition (2) and the caller exploration happen here.
 */
InterprocDecision analyzeInterproc(const FailureSite &site,
                                   const Region &region,
                                   const analysis::CallGraph &cg,
                                   const RegionPolicy &policy,
                                   const InterprocOptions &opts);

} // namespace conair::ca
