#include "conair/transform.h"

#include <unordered_set>

#include "analysis/cfg_utils.h"
#include "analysis/slicing.h"
#include "ir/builder.h"
#include "support/diag.h"

namespace conair::ca {

using ir::BasicBlock;
using ir::Builtin;
using ir::Function;
using ir::Instruction;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;

namespace {

/** Builds one call instruction (unattached). */
std::unique_ptr<Instruction>
makeBuiltinCall(Builtin b, const std::vector<ir::Value *> &args,
                const std::string &tag = "")
{
    auto inst = std::make_unique<Instruction>(Opcode::Call,
                                              ir::builtinResultType(b));
    inst->setBuiltin(b);
    for (ir::Value *a : args)
        inst->addOperand(a);
    if (!tag.empty())
        inst->setTag(tag);
    return inst;
}

class Transformer
{
  public:
    Transformer(Module &m, const TransformPlan &plan)
        : m_(m), plan_(plan)
    {}

    TransformStats
    run()
    {
        insertCheckpoints();
        transformSites();
        instrumentCompensation();
        return stats_;
    }

  private:
    /** Step 1: a conair.checkpoint at every reexecution point. */
    void
    insertCheckpoints()
    {
        uint64_t point_id = 0;
        Builtin ckpt = plan_.localCheckpoints
                           ? Builtin::CaCheckpointLocals
                           : Builtin::CaCheckpoint;
        for (const auto &[pos, info] : plan_.points) {
            (void)info;
            auto call = makeBuiltinCall(ckpt,
                                        {m_.getInt(int64_t(point_id++))});
            if (pos.isFunctionEntry()) {
                if (pos.block->empty())
                    fatal("checkpoint insertion into empty entry block");
                pos.block->insertBefore(pos.block->front(),
                                        std::move(call));
            } else {
                pos.block->insertAfter(pos.after, std::move(call));
            }
            ++stats_.checkpointsInserted;
        }
    }

    /** Step 2: per-site failure handling. */
    void
    transformSites()
    {
        for (const SitePlan &sp : plan_.sites) {
            switch (sp.site.kind) {
              case FailureKind::Assertion:
                transformAssertLike(sp);
                break;
              case FailureKind::WrongOutput:
                if (sp.site.hasOracle)
                    transformAssertLike(sp);
                // Oracle-less output sites only contribute their
                // reexecution points (worst-case overhead, §5); there
                // is no condition to retry on.
                break;
              case FailureKind::Segfault:
                transformSegfaultSite(sp);
                break;
              case FailureKind::Deadlock:
                transformDeadlockSite(sp);
                break;
            }
        }
    }

    /** True when @p target is reachable from @p from in the CFG. */
    static bool
    reaches(BasicBlock *from, BasicBlock *target)
    {
        std::unordered_set<BasicBlock *> seen{from};
        std::vector<BasicBlock *> work{from};
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            if (bb == target)
                return true;
            for (BasicBlock *s : bb->successors())
                if (seen.insert(s).second)
                    work.push_back(s);
        }
        return false;
    }

    /**
     * Marks the site as survived on every branch edge that statically
     * avoids it: the controlling branches' successors from which the
     * failing block is unreachable.  Recovery is complete both when the
     * failing check finally passes and when reexecution legally takes a
     * path around the site.
     */
    void
    insertRecoveredMarkers(Instruction *site, ir::Value *id)
    {
        BasicBlock *fail_bb = site->parent();
        Function *fn = fail_bb->parent();
        analysis::ControlDeps cdeps(*fn);

        // Iterated control dependence: every branch that (transitively)
        // decides whether the failing block runs.
        std::unordered_set<const Instruction *> terms;
        std::vector<const BasicBlock *> work{fail_bb};
        std::unordered_set<const BasicBlock *> seen{fail_bb};
        while (!work.empty()) {
            const BasicBlock *bb = work.back();
            work.pop_back();
            for (const Instruction *term : cdeps.of(bb)) {
                if (terms.insert(term).second &&
                    seen.insert(term->parent()).second)
                    work.push_back(term->parent());
            }
        }

        std::unordered_set<BasicBlock *> marked;
        for (const Instruction *term : terms) {
            for (unsigned i = 0; i < term->numBlockOps(); ++i) {
                BasicBlock *succ = term->blockOp(i);
                if (succ == fail_bb || !marked.insert(succ).second)
                    continue;
                if (reaches(succ, fail_bb))
                    continue;
                insertAfterPhis(succ,
                                makeBuiltinCall(Builtin::CaRecovered,
                                                {id}, site->tag()));
            }
        }
    }

    /** Fig 6: retry loop in front of assert_fail / oracle_fail. */
    void
    transformAssertLike(const SitePlan &sp)
    {
        if (!sp.recoverable)
            return;
        Instruction *site = sp.site.inst;
        BasicBlock *fail_bb = site->parent();
        ir::Value *id = m_.getInt(sp.site.id);

        fail_bb->insertBefore(site,
                              makeBuiltinCall(Builtin::CaTryRollback,
                                              {id}, site->tag()));
        ++stats_.retrySites;
        insertRecoveredMarkers(site, id);
    }

    /** Fig 5c: pointer sanity check + retry before a dereference. */
    void
    transformSegfaultSite(const SitePlan &sp)
    {
        if (!sp.recoverable)
            return; // §4.2: no recovery code at unrecoverable sites
        Instruction *site = sp.site.inst;
        ir::Value *addr = site->opcode() == Opcode::Load
                              ? site->operand(0)
                              : site->operand(1);
        BasicBlock *head = site->parent();
        BasicBlock *tail =
            analysis::splitBlockBefore(site, "ca.deref");
        Function *fn = head->parent();

        auto check = makeBuiltinCall(Builtin::CaPtrCheck, {addr},
                                     site->tag());
        Instruction *check_inst =
            head->insertBefore(head->terminator(), std::move(check));
        ++stats_.ptrChecksInserted;

        BasicBlock *ok_bb = fn->insertBlockAfter(head, "ca.ptr.ok");
        BasicBlock *fail_bb = fn->insertBlockAfter(ok_bb, "ca.ptr.fail");
        ir::Value *id = m_.getInt(sp.site.id);

        // head: condbr (check) ok, fail — replacing the fall-through br.
        Instruction *old_br = head->terminator();
        head->erase(old_br);
        IRBuilder b(&m_);
        b.setInsertAtEnd(head);
        b.condBr(check_inst, ok_bb, fail_bb);

        b.setInsertAtEnd(ok_bb);
        b.callBuiltin(Builtin::CaRecovered, {id})->setTag(site->tag());
        b.br(tail);

        // fail: retry; on give-up, fall into the dereference and fail
        // exactly like the untransformed program.
        b.setInsertAtEnd(fail_bb);
        b.callBuiltin(Builtin::CaTryRollback, {id})->setTag(site->tag());
        b.br(tail);
        ++stats_.retrySites;
    }

    /** Fig 5d: lock -> timedlock with back-off and retry. */
    void
    transformDeadlockSite(const SitePlan &sp)
    {
        if (!sp.recoverable)
            return; // stays a plain blocking lock (§4.2 reverts it)
        Instruction *site = sp.site.inst;
        ir::Value *mutex_arg = site->operand(0);
        ir::Value *id = m_.getInt(sp.site.id);
        BasicBlock *head = site->parent();
        Function *fn = head->parent();

        BasicBlock *tail = analysis::splitBlockAfter(site, "ca.locked");
        BasicBlock *ok_bb = fn->insertBlockAfter(head, "ca.lock.ok");
        BasicBlock *fail_bb =
            fn->insertBlockAfter(ok_bb, "ca.lock.fail");

        IRBuilder b(&m_);
        b.setInsertBefore(site);
        Instruction *timed = b.callBuiltin(
            Builtin::MutexTimedLock,
            {mutex_arg, m_.getInt(plan_.lockTimeout)});
        timed->setTag(site->tag());
        Instruction *got =
            b.cmp(Opcode::ICmpEq, timed, m_.getInt(0));

        // Drop the original lock and the fall-through branch; branch on
        // the timed result instead.
        Instruction *old_br = head->terminator();
        head->erase(old_br);
        head->erase(site);
        b.setInsertAtEnd(head);
        b.condBr(got, ok_bb, fail_bb);

        b.setInsertAtEnd(ok_bb);
        b.callBuiltin(Builtin::CaRecovered, {id})->setTag(timed->tag());
        b.callBuiltin(Builtin::CaNoteLock, {mutex_arg});
        ++stats_.compensationHooks;
        b.br(tail);

        b.setInsertAtEnd(fail_bb);
        b.callBuiltin(Builtin::CaBackoff, {});
        b.callBuiltin(Builtin::CaTryRollback, {id})->setTag(timed->tag());
        // Retry budget exhausted: wait like the original program did.
        b.callBuiltin(Builtin::MutexLock, {mutex_arg});
        b.callBuiltin(Builtin::CaNoteLock, {mutex_arg});
        ++stats_.compensationHooks;
        b.br(tail);

        ++stats_.locksConverted;
        ++stats_.retrySites;
    }

    /** §4.1: log every allocation / acquisition for compensation. */
    void
    instrumentCompensation()
    {
        for (const auto &fn : m_.functions()) {
            // Collect first: insertion invalidates naive iteration.
            std::vector<Instruction *> mallocs;
            std::vector<Instruction *> locks;
            for (const auto &bb : fn->blocks()) {
                for (const auto &inst : bb->insts()) {
                    if (inst->opcode() != Opcode::Call)
                        continue;
                    if (inst->builtin() == Builtin::Malloc)
                        mallocs.push_back(inst.get());
                    else if (inst->builtin() == Builtin::MutexLock)
                        locks.push_back(inst.get());
                }
            }
            for (Instruction *call : mallocs) {
                call->parent()->insertAfter(
                    call,
                    makeBuiltinCall(Builtin::CaNoteAlloc, {call}));
                ++stats_.compensationHooks;
            }
            for (Instruction *call : locks) {
                // Skip the give-up fallback locks emitted above (they
                // are already followed by a note_lock).
                Instruction *next = call->parent()->next(call);
                if (next && next->opcode() == Opcode::Call &&
                    next->builtin() == Builtin::CaNoteLock)
                    continue;
                call->parent()->insertAfter(
                    call, makeBuiltinCall(Builtin::CaNoteLock,
                                          {call->operand(0)}));
                ++stats_.compensationHooks;
            }
        }
    }

    void
    insertAfterPhis(BasicBlock *bb, std::unique_ptr<Instruction> inst)
    {
        for (auto &existing : bb->insts()) {
            if (existing->opcode() != Opcode::Phi) {
                bb->insertBefore(existing.get(), std::move(inst));
                return;
            }
        }
        bb->append(std::move(inst));
    }

    Module &m_;
    const TransformPlan &plan_;
    TransformStats stats_;
};

} // namespace

TransformStats
applyTransform(Module &m, const TransformPlan &plan)
{
    Transformer t(m, plan);
    return t.run();
}

} // namespace conair::ca
