/**
 * @file
 * Unnecessary-rollback elimination (paper §4.2).
 *
 * A failure site that provably cannot be helped by rolling back its
 * idempotent region gets no recovery code:
 *  - a deadlock site is hopeless unless its region re-acquires at least
 *    one other lock (Fig 7a/7b) — nothing would be released, so the
 *    other deadlocked threads could never progress;
 *  - a non-deadlock site is hopeless unless a global/heap read that can
 *    affect the failure condition (via the simplified register-only
 *    backward slice, Fig 8) lies inside the region (Fig 7c/7d) —
 *    otherwise reexecution recomputes exactly the same values.
 */
#pragma once

#include "analysis/slicing.h"
#include "conair/failure_sites.h"
#include "conair/regions.h"

namespace conair::ca {

/** Why a site was kept or dropped. */
enum class Recoverability : uint8_t {
    Recoverable,
    NoLockInRegion,     ///< deadlock site, no other acquisition inside
    NoSharedReadOnSlice ///< non-deadlock site, reexecution is pure replay
};

/**
 * Seeds of the failure condition used for slicing: the controlling
 * branch conditions of the site's block plus, for memory accesses, the
 * dereferenced address.
 */
std::vector<const ir::Value *>
failureConditionSeeds(const FailureSite &site,
                      const analysis::ControlDeps &cdeps);

/**
 * Classifies one site given its region.  @p cdeps must belong to the
 * site's function.  Under RegionPolicy::allowLocalWrites the slice
 * additionally traces through the region's stack stores.
 */
Recoverability classifyRecoverability(const FailureSite &site,
                                      const Region &region,
                                      const analysis::ControlDeps &cdeps,
                                      const RegionPolicy &policy = {});

/**
 * The §4.2 condition evaluated against an arbitrary slice/region pair;
 * exposed for the inter-procedural analysis, which re-checks it in
 * callers.
 */
bool regionHasQualifyingSharedRead(const analysis::SliceResult &slice,
                                   const Region &region);

/** True when the region contains a lock acquisition other than @p site. */
bool regionHasLockAcquisition(const Region &region,
                              const ir::Instruction *site);

} // namespace conair::ca
