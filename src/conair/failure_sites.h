/**
 * @file
 * Failure-site identification (paper §3.1).
 *
 * Survival mode statically enumerates every potential failure site of
 * the four common classes (assertion violation, wrong output,
 * segmentation fault, deadlock); fix mode selects the specific sites a
 * developer named (by instruction tag).
 */
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace conair::ca {

/** The four failure classes of §3.1.1 (Fig 5). */
enum class FailureKind : uint8_t {
    Assertion,   ///< call of assert_fail (Fig 5a)
    WrongOutput, ///< output call; recoverable only with an oracle (5b)
    Segfault,    ///< heap/global pointer-variable dereference (Fig 5c)
    Deadlock,    ///< lock acquisition, timeout-detected (Fig 5d)
};

const char *failureKindName(FailureKind k);

/** One (potential) failure site. */
struct FailureSite
{
    ir::Instruction *inst;
    FailureKind kind;
    int64_t id; ///< dense id used by the runtime intrinsics

    /**
     * Wrong-output sites are only recoverable when the developer
     * supplied an output-correctness oracle (an oracle() assertion);
     * plain print calls are counted and hardened for worst-case
     * overhead (§5) but get no retry loop.
     */
    bool hasOracle = false;
};

/** How failure sites are selected. */
enum class Mode { Survival, Fix };

/** Options for identifyFailureSites(). */
struct FailureSiteOptions
{
    Mode mode = Mode::Survival;

    /**
     * Fix mode: tags of the sites to fix (the front-end tags failure
     * candidates "assert.fn.line", "oracle.fn.line", "deref.fn.line",
     * "lock.fn.line", "out.fn.line").
     */
    std::vector<std::string> fixTags;
};

/** Enumerates failure sites in @p m per @p opts. */
std::vector<FailureSite> identifyFailureSites(ir::Module &m,
                                              const FailureSiteOptions
                                                  &opts);

/** Per-kind counts (Table 4). */
struct SiteCounts
{
    unsigned assertion = 0;
    unsigned wrongOutput = 0;
    unsigned segfault = 0;
    unsigned deadlock = 0;

    unsigned
    total() const
    {
        return assertion + wrongOutput + segfault + deadlock;
    }
};

SiteCounts countByKind(const std::vector<FailureSite> &sites);

} // namespace conair::ca
