#include "conair/optimizer.h"

#include "analysis/memory_class.h"

namespace conair::ca {

using ir::Builtin;
using ir::Instruction;
using ir::Opcode;

std::vector<const ir::Value *>
failureConditionSeeds(const FailureSite &site,
                      const analysis::ControlDeps &cdeps)
{
    std::vector<const ir::Value *> seeds;
    // The branches deciding whether the failing block runs carry the
    // failure condition (the assert/oracle predicate, the pointer
    // check, the timeout check).
    for (const Instruction *term : cdeps.of(site.inst->parent()))
        if (term->numOperands())
            seeds.push_back(term->operand(0));
    // For a dereference site the checked pointer itself is the
    // condition.
    if (analysis::isMemAccess(site.inst))
        seeds.push_back(analysis::addressOf(site.inst));
    // For output sites, the printed value matters (a wrong-output
    // oracle constrains it).
    if (site.kind == FailureKind::WrongOutput &&
        site.inst->opcode() == Opcode::Call &&
        ir::builtinIsOutput(site.inst->builtin()) &&
        site.inst->numOperands() &&
        site.inst->operand(0)->kind() != ir::ValueKind::ConstStr)
        seeds.push_back(site.inst->operand(0));
    return seeds;
}

bool
regionHasQualifyingSharedRead(const analysis::SliceResult &slice,
                              const Region &region)
{
    for (const Instruction *inst : slice.insts)
        if (analysis::isSharedRead(inst) && region.insts.count(inst))
            return true;
    return false;
}

bool
regionHasLockAcquisition(const Region &region, const Instruction *site)
{
    for (const Instruction *inst : region.insts) {
        if (inst == site || inst->opcode() != Opcode::Call)
            continue;
        if (inst->builtin() == Builtin::MutexLock ||
            inst->builtin() == Builtin::MutexTimedLock)
            return true;
    }
    return false;
}

Recoverability
classifyRecoverability(const FailureSite &site, const Region &region,
                       const analysis::ControlDeps &cdeps,
                       const RegionPolicy &policy)
{
    if (site.kind == FailureKind::Deadlock) {
        return regionHasLockAcquisition(region, site.inst)
                   ? Recoverability::Recoverable
                   : Recoverability::NoLockInRegion;
    }
    const ir::Function *fn = site.inst->parent()->parent();
    analysis::SliceOptions sopts;
    if (policy.allowLocalWrites) {
        sopts.traceLocalStores = true;
        sopts.regionInsts = &region.insts;
    }
    analysis::SliceResult slice = analysis::backwardSlice(
        *fn, failureConditionSeeds(site, cdeps), cdeps, sopts);
    return regionHasQualifyingSharedRead(slice, region)
               ? Recoverability::Recoverable
               : Recoverability::NoSharedReadOnSlice;
}

} // namespace conair::ca
