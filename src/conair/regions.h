/**
 * @file
 * Idempotent reexecution-region identification (paper §3.2).
 *
 * For each failure site a backward depth-first search over the CFG
 * finds every reexecution point: the position right after the nearest
 * idempotency-destroying instruction on each path, or the function
 * entry.  The instructions strictly between the points and the site
 * form the (idempotent) reexecution region.
 */
#pragma once

#include <unordered_set>
#include <vector>

#include "conair/failure_sites.h"
#include "ir/function.h"

namespace conair::ca {

/**
 * A reexecution point: either "right after instruction `after`" or, when
 * `after == nullptr`, "at the start of `block`" (which is then the
 * function's entry block).
 */
struct Position
{
    ir::BasicBlock *block = nullptr;
    ir::Instruction *after = nullptr;

    bool isFunctionEntry() const { return after == nullptr; }
    bool operator==(const Position &o) const = default;
};

struct PositionHash
{
    size_t
    operator()(const Position &p) const
    {
        return std::hash<const void *>()(p.block) * 1000003u ^
               std::hash<const void *>()(p.after);
    }
};

/**
 * Controls which instructions destroy idempotency.  The default is the
 * paper's design: every store, every I/O, every call — except the §4.1
 * library extension re-admitting allocation and lock acquisition under
 * compensation logging.  Fig 4's ablation tightens/loosens this.
 */
struct RegionPolicy
{
    /** §4.1 extension: allow malloc / lock / timedlock in regions. */
    bool allowCompensableCalls = true;

    /**
     * Fig 4's next design point to the right: admit writes to
     * non-register *local* (stack) variables.  Regions get longer, but
     * every reexecution point must checkpoint the frame's stack slots
     * (conair.checkpoint_locals), which costs time proportional to the
     * saved state — the trade-off the paper's spectrum sketches.
     * Shared-variable writes and I/O remain excluded either way.
     */
    bool allowLocalWrites = false;
};

/** True when @p inst ends an idempotent region under @p policy. */
bool destroysIdempotency(const ir::Instruction *inst,
                         const RegionPolicy &policy);

/** The reexecution region of one failure site. */
struct Region
{
    /** All reexecution points guarding the site. */
    std::vector<Position> points;

    /** Instructions inside the region (between points and site). */
    std::unordered_set<const ir::Instruction *> insts;

    /** Some backward path reached the function entry. */
    bool reachesEntry = false;

    /**
     * Every backward path reached the entry with no destroying
     * instruction — §4.3 condition (1) for inter-procedural recovery.
     */
    bool cleanToEntry = false;
};

/**
 * Computes the reexecution region ending at @p site (§3.2.2).  The
 * search is linear in the size of the containing function.
 */
Region computeRegion(const ir::Instruction *site,
                     const RegionPolicy &policy);

/**
 * Computes a region ending just before call instruction @p call in a
 * caller function — used by inter-procedural recovery (§4.3), where the
 * reexecution point moves into the caller of the failing function.
 */
Region computeCallerRegion(const ir::Instruction *call,
                           const RegionPolicy &policy);

} // namespace conair::ca
