/**
 * @file
 * The ConAir code transformation (paper §3.3, Fig 6 and Fig 5).
 *
 * Given the analysis results (failure sites, reexecution points,
 * recoverability, inter-procedural decisions), this pass rewrites the
 * module:
 *  - a conair.checkpoint (setjmp) at every reexecution point,
 *  - a bounded conair.try_rollback (longjmp) retry at every recoverable
 *    failure site,
 *  - lock -> timedlock conversion + random back-off at recoverable
 *    deadlock sites,
 *  - a pointer sanity check before every segfault site,
 *  - compensation logging after every malloc / lock call (§4.1),
 *  - a zero-cost conair.recovered marker on each site's success path
 *    (recovery-latency measurement; see DESIGN.md).
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "conair/failure_sites.h"
#include "conair/regions.h"

namespace conair::ca {

/** Everything the transform needs to know about one site. */
struct SitePlan
{
    FailureSite site;
    bool recoverable = true;   ///< §4.2 verdict (kept sites only retry)
    bool interproc = false;    ///< §4.3 promoted
};

/** Per-position bookkeeping for reporting (Tables 5/6). */
struct PositionInfo
{
    bool usedByDeadlock = false;
    bool usedByNonDeadlock = false;
};

/** Inputs to applyTransform(). */
struct TransformPlan
{
    std::vector<SitePlan> sites;

    /** Deduplicated reexecution points with their site-kind usage. */
    std::vector<std::pair<Position, PositionInfo>> points;

    /** Timeout passed to the converted timed locks (virtual ticks). */
    int64_t lockTimeout = 5'000;

    /** Emit conair.checkpoint_locals instead of conair.checkpoint
     *  (required when RegionPolicy::allowLocalWrites was used). */
    bool localCheckpoints = false;
};

/** Static counters produced by the transform. */
struct TransformStats
{
    unsigned checkpointsInserted = 0; ///< static reexecution points
    unsigned retrySites = 0;          ///< sites with a retry loop
    unsigned locksConverted = 0;      ///< lock -> timedlock (Fig 5d)
    unsigned ptrChecksInserted = 0;   ///< sanity checks (Fig 5c)
    unsigned compensationHooks = 0;   ///< note_alloc / note_lock calls
};

/** Applies the transformation to @p m in place. */
TransformStats applyTransform(ir::Module &m, const TransformPlan &plan);

} // namespace conair::ca
