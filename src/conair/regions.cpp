#include "conair/regions.h"

#include "analysis/memory_class.h"
#include "support/diag.h"

namespace conair::ca {

using ir::BasicBlock;
using ir::Builtin;
using ir::Function;
using ir::Instruction;
using ir::Opcode;

bool
destroysIdempotency(const Instruction *inst, const RegionPolicy &policy)
{
    switch (inst->opcode()) {
      case Opcode::Store:
        // Every store: to shared memory (would violate the memory
        // consistency argument of §2.2) or to a non-register stack slot
        // (could corrupt reexecution).  Virtual-register writes are the
        // only writes allowed, and those are not Store instructions.
        // Under the Fig 4 local-writes policy, stack-slot stores are
        // re-admitted: the checkpoint saves the frame's slots.
        if (policy.allowLocalWrites &&
            analysis::classifyAddress(analysis::addressOf(inst)) ==
                analysis::AddrRoot::StackSlot)
            return false;
        return true;
      case Opcode::Call: {
        if (inst->callee())
            return true; // user-function calls
        Builtin b = inst->builtin();
        if (ir::builtinIsConAir(b))
            return false; // runtime intrinsics are recovery plumbing
        // §4.1 extension: allocation and lock acquisition can live in a
        // region because the transform logs them for compensation.
        // User-written timed locks are NOT instrumented (only the ones
        // the transform itself emits are), so they stay destroying.
        if (policy.allowCompensableCalls &&
            (b == Builtin::Malloc || b == Builtin::MutexLock))
            return false;
        return true;
      }
      default:
        // Loads, arithmetic, phis, branches, sched hints: all write at
        // most a virtual register.
        return false;
    }
}

namespace {

/**
 * Backward DFS per §3.2.2, shared by the intra-procedural and
 * caller-side analyses.  @p start_block / @p start_before identify the
 * statement the walk begins at (exclusive).
 */
Region
walkBackward(BasicBlock *start_block, Instruction *start_before,
             const RegionPolicy &policy)
{
    Region region;
    Function *fn = start_block->parent();
    auto preds_list = fn->predecessorList();
    auto preds_of =
        [&](const BasicBlock *bb) -> const std::vector<BasicBlock *> & {
        for (auto &[block, p] : preds_list)
            if (block == bb)
                return p;
        fatal("walkBackward: block not in function");
    };

    std::unordered_set<const Instruction *> visited;
    std::unordered_set<Position, PositionHash> points;
    bool clean_everywhere = true;

    // Work items are instructions still to be examined.
    std::vector<Instruction *> work;

    // Seeds the walk with the statement(s) immediately preceding a
    // program point; records the entry point when there is none.
    auto push_before = [&](BasicBlock *bb, Instruction *inst) {
        Instruction *prev =
            inst ? bb->prev(inst) : (bb->empty() ? nullptr : bb->back());
        if (prev) {
            work.push_back(prev);
            return;
        }
        const auto &preds = preds_of(bb);
        if (preds.empty()) {
            // Start of the entry block: a reexecution point by rule (2).
            points.insert(Position{fn->entry(), nullptr});
            region.reachesEntry = true;
            return;
        }
        for (BasicBlock *p : preds) {
            if (p->empty())
                fatal("walkBackward: empty predecessor block");
            work.push_back(p->back());
        }
    };

    push_before(start_block, start_before);

    while (!work.empty()) {
        Instruction *inst = work.back();
        work.pop_back();
        if (!visited.insert(inst).second)
            continue;
        if (destroysIdempotency(inst, policy)) {
            // Rule (1): reexecution point right after this instruction.
            points.insert(Position{inst->parent(), inst});
            clean_everywhere = false;
            continue;
        }
        region.insts.insert(inst);
        push_before(inst->parent(), inst);
    }

    region.points.assign(points.begin(), points.end());
    region.cleanToEntry = region.reachesEntry && clean_everywhere;
    return region;
}

} // namespace

Region
computeRegion(const Instruction *site, const RegionPolicy &policy)
{
    Instruction *mutable_site = const_cast<Instruction *>(site);
    return walkBackward(mutable_site->parent(), mutable_site, policy);
}

Region
computeCallerRegion(const Instruction *call, const RegionPolicy &policy)
{
    Instruction *mutable_call = const_cast<Instruction *>(call);
    return walkBackward(mutable_call->parent(), mutable_call, policy);
}

} // namespace conair::ca
