/**
 * @file
 * The ConAir pipeline driver: failure sites -> regions -> §4.3
 * inter-procedural promotion -> §4.2 optimization -> code transform.
 *
 * This is the library's main entry point (the equivalent of running the
 * paper's LLVM pass stack over a program).
 */
#pragma once

#include <string>
#include <vector>

#include "conair/failure_sites.h"
#include "conair/interproc.h"
#include "conair/regions.h"
#include "conair/transform.h"
#include "ir/module.h"

namespace conair::ca {

/** All pipeline knobs. */
struct ConAirOptions
{
    Mode mode = Mode::Survival;
    std::vector<std::string> fixTags; ///< fix-mode site tags

    bool optimize = true;   ///< §4.2 unnecessary-rollback elimination
    bool interproc = true;  ///< §4.3 inter-procedural recovery
    unsigned interprocDepth = 3;

    RegionPolicy regionPolicy;
    int64_t lockTimeout = 1'500; ///< converted timedlock timeout (ticks)

    /** Verify the module after transforming (fatal on pass bugs). */
    bool verifyAfter = true;
};

/** Per-site outcome, for reports and tests. */
struct SiteReport
{
    std::string tag;
    FailureKind kind;
    bool hasOracle;
    bool recoverable;   ///< survived §4.2
    bool interproc;     ///< promoted by §4.3
    bool interprocGaveUp;
    unsigned numPoints; ///< reexecution points guarding it
};

/** Everything the pipeline reports (feeds Tables 4, 5, 6 and §6.4). */
struct ConAirReport
{
    SiteCounts identified;    ///< Table 4: sites hardened
    SiteCounts recoverable;   ///< sites that kept recovery code
    unsigned staticReexecPoints = 0; ///< Table 5 (static)
    unsigned deadlockPoints = 0;     ///< points used by deadlock sites
    unsigned nonDeadlockPoints = 0;  ///< points used by other sites
    unsigned interprocSites = 0;
    unsigned sitesDroppedByOptimizer = 0;
    double analysisMicros = 0; ///< §6.4 wall-clock analysis+transform
    TransformStats transform;
    std::vector<SiteReport> sites;
};

/** Runs the full ConAir pipeline over @p m, in place. */
ConAirReport applyConAir(ir::Module &m, const ConAirOptions &opts = {});

} // namespace conair::ca
