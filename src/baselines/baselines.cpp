#include "baselines/baselines.h"

#include "support/diag.h"
#include "support/str.h"

namespace conair::bl {

using apps::AppSpec;
using apps::PreparedApp;
using vm::RunResult;
using vm::VmConfig;

RestartResult
measureRestart(const PreparedApp &p, uint64_t seed)
{
    RestartResult result;

    // The failing run: forced buggy schedule, program dies.
    RunResult failed = apps::runBuggy(p, seed);
    result.failedRunMicros =
        double(failed.clock) * vm::kNanosPerStep / 1000.0;

    // The restart: a fresh process under ordinary timing (the anomaly
    // was transient).  Its full duration is the recovery latency.
    RunResult rerun = apps::runClean(p, seed + 1);
    result.restartMicros =
        double(rerun.clock) * vm::kNanosPerStep / 1000.0;
    result.recovered = apps::runIsCorrect(*p.spec, rerun);
    return result;
}

WpRunResult
runWithWpCheckpoint(const PreparedApp &p, uint64_t seed,
                    const WpOptions &opts)
{
    VmConfig cfg = p.spec->buggyConfig;
    cfg.seed = seed;
    cfg.wpCheckpointInterval = opts.interval;
    cfg.wpMaxRecoveries = opts.maxRecoveries;
    cfg.wpSnapshotCostPerCell = opts.costPerCell;
    for (vm::DelayRule &r : cfg.delays)
        r.maxFires = 1; // transient anomaly: rescheduling can escape it

    WpRunResult out;
    out.run = vm::runProgram(*p.module, cfg);
    out.recovered = apps::runIsCorrect(*p.spec, out.run) &&
                    out.run.stats.wpRecoveries > 0;
    return out;
}

double
measureWpOverhead(const AppSpec &app, const WpOptions &opts,
                  unsigned runs)
{
    apps::HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp base = apps::prepareApp(app, plain);

    uint64_t base_steps = 0, wp_steps = 0;
    for (unsigned seed = 1; seed <= runs; ++seed) {
        RunResult rb = apps::runClean(base, seed);
        if (!rb.ok())
            fatal(strfmt("%s: clean baseline run failed",
                         app.name.c_str()));
        base_steps += rb.stats.steps;

        VmConfig cfg = app.cleanConfig;
        cfg.seed = seed;
        cfg.wpCheckpointInterval = opts.interval;
        cfg.wpMaxRecoveries = opts.maxRecoveries;
        cfg.wpSnapshotCostPerCell = opts.costPerCell;
        RunResult rw = vm::runProgram(*base.module, cfg);
        if (!rw.ok())
            fatal(strfmt("%s: wp-checkpoint clean run failed",
                         app.name.c_str()));
        wp_steps += rw.stats.steps;
    }
    return base_steps ? double(wp_steps) / double(base_steps) - 1.0
                      : 0.0;
}

} // namespace conair::bl
