/**
 * @file
 * Recovery baselines ConAir is compared against (paper §1, §7, Table 7
 * and the Fig 4 design-space ablation):
 *
 *  - whole-program restart: re-run the program from scratch after a
 *    failure (Table 7's "Restart" column);
 *  - whole-program checkpoint/rollback (Rx/ASSURE-style): periodic
 *    snapshots of all threads + memory, multi-threaded rollback, and a
 *    perturbed schedule on reexecution — implemented by the VM behind
 *    VmConfig::wpCheckpointInterval.
 */
#pragma once

#include "apps/harness.h"

namespace conair::bl {

/** Result of a restart-recovery measurement. */
struct RestartResult
{
    bool recovered = false;      ///< the rerun produced correct output
    double failedRunMicros = 0;  ///< work lost when the failure hit
    double restartMicros = 0;    ///< duration of the recovery rerun
};

/**
 * Measures restart recovery for one failure run of @p p: the program
 * fails under the forced schedule, is restarted from scratch and —
 * the timing anomaly being transient — completes.  The recovery cost
 * is the full rerun (plus losing the failed run's work), which is what
 * Table 7's restart column reports.
 */
RestartResult measureRestart(const apps::PreparedApp &p, uint64_t seed);

/** Options for the whole-program checkpoint baseline. */
struct WpOptions
{
    uint64_t interval = 1'000;   ///< steps between snapshots
    unsigned maxRecoveries = 12;
    double costPerCell = 1.0;
};

/** One whole-program-checkpoint run result. */
struct WpRunResult
{
    vm::RunResult run;
    bool recovered = false; ///< correct despite the forced failure
};

/**
 * Runs @p p under the forced-failure schedule with whole-program
 * checkpointing enabled.  The delay rules are made transient
 * (maxFires = 1) — multi-threaded rollback survives by rescheduling,
 * which only helps when the anomaly does not repeat.
 */
WpRunResult runWithWpCheckpoint(const apps::PreparedApp &p,
                                uint64_t seed, const WpOptions &opts);

/**
 * Measures the clean-run overhead of whole-program checkpointing
 * (fraction, 0.01 == 1%) — the cost column of the Fig 4 ablation.
 */
double measureWpOverhead(const apps::AppSpec &app, const WpOptions &opts,
                         unsigned runs);

} // namespace conair::bl
