/**
 * @file
 * The flight recorder: a per-thread ring buffer of typed trace events
 * covering everything that matters at recovery time — scheduler
 * decisions, PCT change points, checkpoints, rollbacks, compensation
 * ops, lock traffic, failure-site hits, chaos injections.
 *
 * The recorder is passive observation only: recording never touches
 * the VM's RNG streams, clock, or step accounting, so an instrumented
 * run is tick-for-tick identical to an uninstrumented one (pinned by
 * tests/obs/vm_trace_test.cpp).  The VM holds a nullable pointer
 * (VmConfig::recorder); disabled mode is one branch per event site and
 * allocates nothing.
 *
 * Ring semantics: each thread keeps the newest `capacity` events;
 * older ones are overwritten.  Per-kind totals survive wraparound, so
 * aggregate counts (rollbacks, checkpoints, ...) always match the
 * run's RunStats even when the ring dropped the early events.
 *
 * Everything the recorder captures is a deterministic function of
 * (program, engine, policy, seed), which makes exported traces
 * regression-testable artifacts (see tests/obs/trace_golden_test.cpp
 * and docs/OBSERVABILITY.md).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace conair::obs {

/**
 * Event taxonomy.  The `a` / `b` payload words are kind-specific:
 *
 *  kind                 a                        b
 *  -------------------  -----------------------  -------------------------
 *  ThreadSpawn          PCT priority (0 if n/a)  -
 *  SchedSwitch          previous thread id       runnable-thread count
 *  SchedPoint           change-point index       new priority (PCT)
 *  Checkpoint           1 = locals-saving        schedTicks at checkpoint
 *  Rollback             retry # within episode   checkpoint-to-failure
 *                                                distance in schedTicks
 *  CompensationFree     heap block id            -
 *  CompensationUnlock   mutex cell block         mutex cell offset
 *  Backoff              sleep ticks              1 = retry back-off
 *  LockAcquire          mutex cell block         1 = granted after block
 *  LockBlock            mutex cell block         1 = timed acquisition
 *  LockTimeout          mutex cell block         1 = zero-timeout try-lock
 *  FailureSite          vm::Outcome as integer   -
 *  ChaosRollback        global step count        -
 *  RecoveryDone         retries in the episode   episode start clock
 *  SharedLoad           packed cell address      value bits read
 *  SharedStore          packed cell address      value bits written
 *  CoverageNovel        interleaving edge key    cov::EdgeKind as int
 *  CoverageSnapshot     distinct edges so far    novel edges this run
 *
 * `tag` carries the failure-site / lock-site tag when the instruction
 * has one (Rollback, FailureSite, RecoveryDone, Lock*, Shared*).
 *
 * SharedLoad / SharedStore only fire in *diagnosis recording mode*
 * (VmConfig::recordSharedAccesses, off by default): every non-stack
 * load/store is recorded with its cell address packed via
 * packCellAddr() and the transferred value's raw bits (integers and
 * bools as-is, doubles bit-cast, pointers packed like addresses,
 * uninitialised cells as 0).  The postmortem diagnosis engine
 * (src/obs/postmortem/) joins these with the static backward slice to
 * reconstruct the racy access pair behind a recovery episode.
 *
 * CoverageNovel / CoverageSnapshot are *annotation* events: the VM
 * never emits them.  The coverage folder (src/obs/coverage/) appends
 * them after a run, stamped with the clock/step/tid at which the run
 * discovered each new interleaving edge, so exported traces and
 * timelines show when coverage grew.
 */
enum class EventKind : uint8_t {
    ThreadSpawn,
    SchedSwitch,
    SchedPoint,
    Checkpoint,
    Rollback,
    CompensationFree,
    CompensationUnlock,
    Backoff,
    LockAcquire,
    LockBlock,
    LockTimeout,
    FailureSite,
    ChaosRollback,
    RecoveryDone,
    SharedLoad,
    SharedStore,
    CoverageNovel,
    CoverageSnapshot,
};

inline constexpr size_t kEventKindCount =
    size_t(EventKind::CoverageSnapshot) + 1;

/**
 * @name Packed cell addresses (SharedLoad / SharedStore payload `a`)
 *
 * A VM memory cell is (segment, block, offset).  Diagnosis events pack
 * that triple into one uint64 so the recorder's fixed-width payload
 * words can carry it: segment in the top 2 bits, block in the middle
 * 38, offset (non-negative, < 2^24 in practice — blocks are small) in
 * the low 24.  The VM packs with packCellAddr(); the diagnosis engine
 * unpacks with the accessors, so both sides agree by construction.
 * @{
 */

inline constexpr uint64_t packCellAddr(uint8_t seg, uint32_t block,
                                       int64_t offset)
{
    return (uint64_t(seg & 3) << 62) | (uint64_t(block) << 24) |
           (uint64_t(offset) & 0xFFFFFF);
}

inline constexpr uint8_t cellSeg(uint64_t packed)
{
    return uint8_t(packed >> 62);
}

inline constexpr uint32_t cellBlock(uint64_t packed)
{
    return uint32_t((packed >> 24) & 0x3FFFFFFFFFull);
}

inline constexpr int64_t cellOffset(uint64_t packed)
{
    return int64_t(packed & 0xFFFFFF);
}

/** @} */

/** Stable lowercase name ("rollback", "lock-acquire", ...). */
const char *eventKindName(EventKind k);

/** One recorded event. */
struct TraceEvent
{
    uint64_t seq = 0;   ///< global record order (total order of events)
    uint64_t clock = 0; ///< virtual time at the event
    uint64_t step = 0;  ///< executed-instruction count at the event
    uint64_t a = 0;     ///< kind-specific payload (see EventKind)
    uint64_t b = 0;     ///< kind-specific payload (see EventKind)
    uint32_t tid = 0;   ///< VM thread the event belongs to
    EventKind kind = EventKind::ThreadSpawn;
    std::string tag;    ///< site tag, when the kind carries one

    bool operator==(const TraceEvent &) const = default;
};

/**
 * How a full per-thread buffer behaves.
 *
 * Ring (the default) keeps the newest `capacity` events per thread and
 * overwrites older ones — bounded memory, suited to always-on
 * observability, but the retained stream is a *suffix*.  Grow never
 * drops: the buffer extends past the capacity hint, so dropped() stays
 * zero for every thread.  Replay-grade recording requires Grow (or a
 * ring that provably never wrapped): building a ReplayLog from a
 * wrapped recorder hard-errors with the drop count, because a replay
 * reconstructed from a truncated prefix would silently diverge from
 * the episode it claims to reproduce (src/obs/replay/).
 */
enum class RecorderMode : uint8_t {
    Ring, ///< fixed capacity, newest events win
    Grow, ///< capacity is an initial reservation; never drops
};

/** Per-thread ring buffers + per-kind totals. */
class FlightRecorder
{
  public:
    /** @p perThreadCapacity = events retained per thread (newest win;
     *  clamped to >= 1).  Under RecorderMode::Grow it is only the
     *  initial reservation — the buffer grows instead of wrapping. */
    explicit FlightRecorder(size_t perThreadCapacity = 4096,
                            RecorderMode mode = RecorderMode::Ring);

    void record(uint32_t tid, EventKind kind, uint64_t clock,
                uint64_t step, uint64_t a = 0, uint64_t b = 0,
                std::string tag = {});

    /** Highest thread id seen + 1 (0 when nothing was recorded). */
    size_t threadCount() const { return rings_.size(); }

    /** Events still retained for @p tid, oldest first. */
    std::vector<TraceEvent> threadEvents(uint32_t tid) const;

    /** All retained events of all threads, in record (seq) order. */
    std::vector<TraceEvent> merged() const;

    /** Events ever recorded for @p tid (including overwritten ones). */
    uint64_t totalRecorded(uint32_t tid) const;

    /** Events overwritten by ring wraparound for @p tid. */
    uint64_t dropped(uint32_t tid) const;

    uint64_t totalRecordedAll() const { return nextSeq_; }
    uint64_t droppedAll() const;

    /** Events of @p k ever recorded; survives wraparound, so these
     *  totals are comparable against RunStats counters. */
    uint64_t totalOf(EventKind k) const
    {
        return kindTotals_[size_t(k)];
    }

    size_t capacity() const { return cap_; }

    RecorderMode mode() const { return mode_; }

    /** Forgets all events and totals (capacity is kept). */
    void clear();

  private:
    struct Ring
    {
        std::vector<TraceEvent> buf; ///< grows to cap_, then wraps
        size_t next = 0;             ///< overwrite position once full
        uint64_t total = 0;          ///< events ever recorded
    };

    size_t cap_;
    RecorderMode mode_ = RecorderMode::Ring;
    uint64_t nextSeq_ = 0;
    std::vector<Ring> rings_; ///< indexed by thread id
    uint64_t kindTotals_[kEventKindCount] = {};
};

} // namespace conair::obs
