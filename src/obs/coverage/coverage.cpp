#include "obs/coverage/coverage.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.h"

namespace conair::obs::cov {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvByte(uint64_t h, uint8_t b)
{
    return (h ^ b) * kFnvPrime;
}

uint64_t
fnvWord(uint64_t h, uint64_t w)
{
    for (int i = 0; i < 8; ++i)
        h = fnvByte(h, uint8_t(w >> (i * 8)));
    return h;
}

/**
 * A site signature identifies *where* an event happened, not when:
 * the event kind, its stable payload word (mutex cell for lock
 * traffic, packed cell address for shared accesses — never value
 * bits or clocks), and the site tag.
 */
uint64_t
siteSig(const TraceEvent &ev)
{
    uint64_t h = fnvByte(kFnvOffset, uint8_t(ev.kind));
    h = fnvWord(h, ev.a);
    for (char c : ev.tag)
        h = fnvByte(h, uint8_t(c));
    return h;
}

uint64_t
edgeKey(EdgeKind kind, uint64_t from, uint64_t to)
{
    uint64_t h = fnvByte(kFnvOffset, uint8_t(kind));
    h = fnvWord(h, from);
    h = fnvWord(h, to);
    return h ? h : 1; // 0 is the CoverageMap empty-slot sentinel
}

bool
isSchedulerNoise(EventKind k)
{
    return k == EventKind::ThreadSpawn || k == EventKind::SchedSwitch ||
           k == EventKind::SchedPoint;
}

bool
isSyncRelevant(EventKind k)
{
    switch (k) {
      case EventKind::LockAcquire:
      case EventKind::LockBlock:
      case EventKind::LockTimeout:
      case EventKind::CompensationUnlock:
      case EventKind::SharedLoad:
      case EventKind::SharedStore:
        return true;
      default:
        return false;
    }
}

} // namespace

const char *
edgeKindName(EdgeKind k)
{
    switch (k) {
      case EdgeKind::SyncSync: return "sync-sync";
      case EdgeKind::SwitchWindow: return "switch-window";
      case EdgeKind::RacyPair: return "racy-pair";
    }
    return "unknown";
}

CoverageFold
foldCoverage(const FlightRecorder &rec)
{
    CoverageFold fold;
    std::unordered_map<uint64_t, size_t> seen; // key -> edges index
    // A preemption between two sync-relevant sites shows up in *both*
    // folds: the SchedSwitch window closes on the same (from, to) site
    // pair the cross-thread sync fold records.  Two kinds mean two
    // distinct keys, so without this set one interleaving fact would
    // be charged twice — inflating novelty counts and, downstream,
    // the mutation energy the guided explorer assigns to a schedule.
    // Dedup per run on the bare (from, to) pair: whichever of the two
    // folds sees the pair first owns it (SwitchWindow, since the
    // window check runs before the sync fold).  RacyPair edges have
    // different endpoint semantics (store site on the same cell) and
    // stay separate.
    std::unordered_set<uint64_t> pairSeen;

    auto addEdge = [&](EdgeKind kind, uint64_t from, uint64_t to,
                       const TraceEvent &at) {
        if (kind == EdgeKind::SyncSync ||
            kind == EdgeKind::SwitchWindow) {
            uint64_t pair = fnvWord(fnvWord(kFnvOffset, from), to);
            if (!pairSeen.insert(pair).second)
                return;
        }
        Edge e;
        e.kind = kind;
        e.from = from;
        e.to = to;
        e.key = edgeKey(kind, from, to);
        e.clock = at.clock;
        e.step = at.step;
        e.tid = at.tid;
        auto [it, inserted] = seen.emplace(e.key, fold.edges.size());
        if (inserted) {
            fold.edges.push_back(e);
            ++fold.perKind[size_t(kind)];
        }
    };

    uint64_t lastSyncSig = 0;
    uint32_t lastSyncTid = 0;
    bool haveSync = false;

    uint64_t lastEvSig = 0;
    bool haveLastEv = false;

    uint64_t pendingSwitchFrom = 0;
    bool pendingSwitch = false;

    struct LastStore
    {
        uint32_t tid;
        uint64_t sig;
    };
    std::unordered_map<uint64_t, LastStore> lastStoreByAddr;

    for (const TraceEvent &ev : rec.merged()) {
        if (ev.kind == EventKind::CoverageNovel ||
            ev.kind == EventKind::CoverageSnapshot)
            continue; // re-folding an annotated trace stays stable
        if (ev.kind == EventKind::SchedSwitch) {
            // The window opens at the last real event before the
            // switch and closes at the first real event after it.
            if (haveLastEv) {
                pendingSwitch = true;
                pendingSwitchFrom = lastEvSig;
            }
            continue;
        }
        if (isSchedulerNoise(ev.kind))
            continue;

        uint64_t sig = siteSig(ev);

        if (pendingSwitch) {
            addEdge(EdgeKind::SwitchWindow, pendingSwitchFrom, sig, ev);
            pendingSwitch = false;
        }

        if (isSyncRelevant(ev.kind)) {
            if (haveSync && lastSyncTid != ev.tid)
                addEdge(EdgeKind::SyncSync, lastSyncSig, sig, ev);
            lastSyncSig = sig;
            lastSyncTid = ev.tid;
            haveSync = true;
        }

        if (ev.kind == EventKind::SharedLoad ||
            ev.kind == EventKind::SharedStore) {
            auto it = lastStoreByAddr.find(ev.a);
            if (it != lastStoreByAddr.end() &&
                it->second.tid != ev.tid)
                addEdge(EdgeKind::RacyPair, it->second.sig, sig, ev);
            if (ev.kind == EventKind::SharedStore)
                lastStoreByAddr[ev.a] = {ev.tid, sig};
        }

        lastEvSig = sig;
        haveLastEv = true;
    }

    std::sort(fold.edges.begin(), fold.edges.end(),
              [](const Edge &x, const Edge &y) { return x.key < y.key; });
    return fold;
}

uint64_t
coverageDigest(const std::vector<uint64_t> &sortedKeys)
{
    uint64_t h = kFnvOffset;
    for (uint64_t k : sortedKeys)
        h = fnvWord(h, k);
    return h;
}

uint64_t
coverageDigest(const std::vector<Edge> &sortedEdges)
{
    uint64_t h = kFnvOffset;
    for (const Edge &e : sortedEdges)
        h = fnvWord(h, e.key);
    return h;
}

void
annotateRecorder(FlightRecorder &rec, const std::vector<Edge> &novel,
                 uint64_t distinctAfter)
{
    uint64_t endClock = 0, endStep = 0;
    for (const TraceEvent &ev : rec.merged()) {
        endClock = std::max(endClock, ev.clock);
        endStep = std::max(endStep, ev.step);
    }
    for (const Edge &e : novel)
        rec.record(e.tid, EventKind::CoverageNovel, e.clock, e.step,
                   e.key, uint64_t(e.kind));
    rec.record(0, EventKind::CoverageSnapshot, endClock, endStep,
               distinctAfter, novel.size());
}

//
// CoverageMap.
//

namespace {

/** Probe-length cap: far beyond any sane load factor, small enough
 *  that a pathologically full table degrades to counted drops instead
 *  of full-table scans. */
constexpr size_t kMaxProbe = 256;

size_t
roundUpPow2(size_t n)
{
    size_t p = 1024;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

CoverageMap::CoverageMap(size_t capacity)
{
    size_t n = roundUpPow2(capacity);
    slots_ = std::make_unique<Slot[]>(n);
    mask_ = n - 1;
}

bool
CoverageMap::insert(const Edge &e)
{
    size_t idx = size_t(e.key) & mask_;
    size_t maxProbe = std::min(kMaxProbe, mask_ + 1);
    for (size_t probe = 0; probe < maxProbe;
         ++probe, idx = (idx + 1) & mask_) {
        Slot &s = slots_[idx];
        uint64_t k = s.key.load(std::memory_order_acquire);
        if (k == e.key)
            return false;
        if (k != 0)
            continue;
        uint64_t expected = 0;
        if (s.key.compare_exchange_strong(expected, e.key,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            s.from.store(e.from, std::memory_order_relaxed);
            s.to.store(e.to, std::memory_order_relaxed);
            // The ready word publishes the payload (and doubles as
            // the kind): snapshot() acquire-loads it before trusting
            // from/to.
            s.ready.store(uint64_t(e.kind) + 1,
                          std::memory_order_release);
            distinct_.fetch_add(1, std::memory_order_acq_rel);
            return true;
        }
        if (expected == e.key)
            return false; // another worker won the same edge
        // A different key claimed the slot under us; keep probing.
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

uint64_t
CoverageMap::insertAll(const std::vector<Edge> &edges)
{
    uint64_t novel = 0;
    for (const Edge &e : edges)
        novel += insert(e);
    return novel;
}

std::vector<Edge>
CoverageMap::snapshot() const
{
    std::vector<Edge> out;
    for (size_t i = 0; i <= mask_; ++i) {
        const Slot &s = slots_[i];
        uint64_t ready = s.ready.load(std::memory_order_acquire);
        if (ready == 0)
            continue; // empty or claimed-but-unpublished
        Edge e;
        e.key = s.key.load(std::memory_order_relaxed);
        e.from = s.from.load(std::memory_order_relaxed);
        e.to = s.to.load(std::memory_order_relaxed);
        e.kind = EdgeKind(ready - 1);
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const Edge &x, const Edge &y) { return x.key < y.key; });
    return out;
}

uint64_t
CoverageMap::digest() const
{
    return coverageDigest(snapshot());
}

} // namespace conair::obs::cov
