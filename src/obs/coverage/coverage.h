/**
 * @file
 * Interleaving coverage: a compact, aggregatable "what schedules has
 * the campaign actually seen" signal derived from FlightRecorder
 * traces — the substrate for coverage-guided exploration and for live
 * campaign telemetry (ROADMAP items).
 *
 * Coverage is a pure *derived view* of the trace: nothing here runs
 * inside the VM.  A run records through the already-proven-passive
 * FlightRecorder (tick-identical to a bare run), and foldCoverage()
 * turns the retained events into a set of interleaving *edges*:
 *
 *  SyncSync      consecutive sync-relevant operations (lock traffic,
 *                compensation unlocks, diagnosis-mode shared accesses)
 *                executed by *different* threads — the classic
 *                interleaving-pair signal.
 *  SwitchWindow  (last event before a scheduler switch) -> (first
 *                event after it): the preemption window the scheduler
 *                actually opened.
 *  RacyPair      (last shared store on an address by another thread)
 *                -> (this shared access): only observable in diagnosis
 *                recording mode (VmConfig::recordSharedAccesses).
 *
 * A preemption between two sync-relevant sites is one interleaving
 * fact even though both the SwitchWindow and the SyncSync fold see it;
 * foldCoverage() dedups those two kinds per run on the bare
 * (from, to) site pair (first fold to see the pair owns it), so
 * novelty counts — and the mutation energy the guided explorer
 * (src/explore/guided.h) charges from them — count each pair once.
 *
 * Each endpoint is a *site signature* — an FNV-1a hash of the event
 * kind, its stable payload word, and its site tag — so edges are
 * independent of when in the run they occurred and can be compared
 * across schedules, policies, and engines.  An edge's key is the
 * FNV-1a hash of (kind, from, to); the digest of a whole edge set is
 * the FNV-1a hash over the *sorted* keys, which makes it a set-union
 * invariant: any partition of the same schedules over any number of
 * workers produces the same digest (pinned by
 * tests/explore/campaign_test.cpp).
 *
 * CoverageMap is the campaign-global accumulator: a fixed-size
 * open-addressing hash table of atomic slots that workers insert into
 * lock-free (release-CAS publish, acquire reads), with a monotonic
 * distinctEdges() counter and an overflow counter instead of silent
 * drops.  Per-schedule *novelty* (did this run add any edge?) falls
 * out of insert()'s return value.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace conair::obs {
class FlightRecorder;
}

namespace conair::obs::cov {

/** How the two endpoint sites of an edge relate. */
enum class EdgeKind : uint8_t {
    SyncSync,     ///< sync op -> sync op across a thread change
    SwitchWindow, ///< last event before a SchedSwitch -> first after
    RacyPair,     ///< foreign shared store -> shared access, same cell
};

inline constexpr size_t kEdgeKindCount = size_t(EdgeKind::RacyPair) + 1;

/** Stable lowercase name ("sync-sync", ...). */
const char *edgeKindName(EdgeKind k);

/** One interleaving edge plus where this run discovered it. */
struct Edge
{
    uint64_t key = 0;  ///< FNV-1a of (kind, from, to); never 0
    uint64_t from = 0; ///< source site signature
    uint64_t to = 0;   ///< destination site signature
    EdgeKind kind = EdgeKind::SyncSync;

    // Discovery point within the run that folded this edge (the
    // *destination* event's position) — feeds the CoverageNovel
    // trace annotations.
    uint64_t clock = 0;
    uint64_t step = 0;
    uint32_t tid = 0;

    bool operator==(const Edge &o) const { return key == o.key; }
};

/** What foldCoverage() extracted from one run's trace. */
struct CoverageFold
{
    /** Distinct edges, sorted by key (deterministic for a fixed
     *  trace; each carries its first discovery point). */
    std::vector<Edge> edges;

    /** Distinct-edge count per EdgeKind. */
    uint64_t perKind[kEdgeKindCount] = {};
};

/** Folds a recorded run into its interleaving-edge set.  Pure
 *  function of the retained events: same trace, same fold.  A wrapped
 *  ring folds the retained suffix (still deterministic — wraparound
 *  is itself a deterministic function of the schedule). */
CoverageFold foldCoverage(const FlightRecorder &rec);

/** FNV-1a over a *sorted* key sequence: the canonical digest of an
 *  edge set.  Set-union invariant — independent of discovery order,
 *  schedule partitioning, and worker count. */
uint64_t coverageDigest(const std::vector<uint64_t> &sortedKeys);

/** Convenience: digest of a fold's (already sorted) edge list. */
uint64_t coverageDigest(const std::vector<Edge> &sortedEdges);

/**
 * Appends CoverageNovel / CoverageSnapshot annotation events to
 * @p rec: one CoverageNovel per @p novel edge at its discovery
 * clock/step/tid (payload a = edge key, b = EdgeKind), then one
 * CoverageSnapshot (a = @p distinctAfter, b = novel count) at the end
 * of the trace.  Call after the run finished — annotations never
 * exist while the VM executes, so passivity is untouched.
 */
void annotateRecorder(FlightRecorder &rec,
                      const std::vector<Edge> &novel,
                      uint64_t distinctAfter);

/**
 * The campaign-global interleaving coverage map.
 *
 * Lock-free open-addressing table: insert() linearly probes the
 * fixed power-of-two slot array, claims an empty slot with a CAS on
 * the key word, then publishes the payload with a release store on
 * the ready word; readers acquire-load the ready word before trusting
 * the payload.  distinctEdges() is monotonic.  A probe sequence that
 * finds no slot (table effectively full) bumps dropped() instead of
 * silently losing the edge.
 */
class CoverageMap
{
  public:
    /** @p capacity is rounded up to a power of two (>= 1024). */
    explicit CoverageMap(size_t capacity = 1 << 16);

    /** Inserts one edge; returns true iff it was new (the novelty
     *  bit).  Thread-safe and lock-free. */
    bool insert(const Edge &e);

    /** Inserts a whole fold; returns how many edges were novel. */
    uint64_t insertAll(const std::vector<Edge> &edges);

    /** Distinct edges inserted so far (monotonic). */
    uint64_t distinctEdges() const
    {
        return distinct_.load(std::memory_order_acquire);
    }

    /** Edges lost to table overflow (0 in any healthy campaign). */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    size_t capacity() const { return slots_ ? mask_ + 1 : 0; }

    /** A consistent point-in-time edge dump, sorted by key.  Safe to
     *  call concurrently with inserts (in-flight, unpublished slots
     *  are skipped). */
    std::vector<Edge> snapshot() const;

    /** FNV-1a digest over the sorted keys of snapshot(): equal to the
     *  digest of the union of all inserted folds, independent of
     *  insertion order and worker count. */
    uint64_t digest() const;

  private:
    struct Slot
    {
        std::atomic<uint64_t> key{0};
        std::atomic<uint64_t> from{0};
        std::atomic<uint64_t> to{0};
        std::atomic<uint64_t> ready{0}; ///< EdgeKind + 1 once published
    };

    std::unique_ptr<Slot[]> slots_;
    size_t mask_ = 0;
    std::atomic<uint64_t> distinct_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace conair::obs::cov
