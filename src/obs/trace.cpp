#include "obs/trace.h"

#include <algorithm>

namespace conair::obs {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::ThreadSpawn: return "thread-spawn";
      case EventKind::SchedSwitch: return "sched-switch";
      case EventKind::SchedPoint: return "sched-point";
      case EventKind::Checkpoint: return "checkpoint";
      case EventKind::Rollback: return "rollback";
      case EventKind::CompensationFree: return "compensation-free";
      case EventKind::CompensationUnlock: return "compensation-unlock";
      case EventKind::Backoff: return "backoff";
      case EventKind::LockAcquire: return "lock-acquire";
      case EventKind::LockBlock: return "lock-block";
      case EventKind::LockTimeout: return "lock-timeout";
      case EventKind::FailureSite: return "failure-site";
      case EventKind::ChaosRollback: return "chaos-rollback";
      case EventKind::RecoveryDone: return "recovery-done";
      case EventKind::SharedLoad: return "shared-load";
      case EventKind::SharedStore: return "shared-store";
      case EventKind::CoverageNovel: return "coverage-novel";
      case EventKind::CoverageSnapshot: return "coverage-snapshot";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(size_t perThreadCapacity,
                               RecorderMode mode)
    : cap_(std::max<size_t>(perThreadCapacity, 1)), mode_(mode)
{
}

void
FlightRecorder::record(uint32_t tid, EventKind kind, uint64_t clock,
                       uint64_t step, uint64_t a, uint64_t b,
                       std::string tag)
{
    if (tid >= rings_.size())
        rings_.resize(size_t(tid) + 1);
    Ring &r = rings_[tid];

    TraceEvent ev;
    ev.seq = nextSeq_++;
    ev.clock = clock;
    ev.step = step;
    ev.a = a;
    ev.b = b;
    ev.tid = tid;
    ev.kind = kind;
    ev.tag = std::move(tag);

    if (r.buf.size() < cap_ || mode_ == RecorderMode::Grow) {
        r.buf.push_back(std::move(ev));
    } else {
        r.buf[r.next] = std::move(ev);
        r.next = (r.next + 1) % cap_;
    }
    ++r.total;
    ++kindTotals_[size_t(kind)];
}

std::vector<TraceEvent>
FlightRecorder::threadEvents(uint32_t tid) const
{
    std::vector<TraceEvent> out;
    if (tid >= rings_.size())
        return out;
    const Ring &r = rings_[tid];
    out.reserve(r.buf.size());
    // Once full, r.next points at the oldest retained event.
    for (size_t i = 0; i < r.buf.size(); ++i)
        out.push_back(r.buf[(r.next + i) % r.buf.size()]);
    return out;
}

std::vector<TraceEvent>
FlightRecorder::merged() const
{
    std::vector<TraceEvent> out;
    for (uint32_t tid = 0; tid < rings_.size(); ++tid) {
        std::vector<TraceEvent> evs = threadEvents(tid);
        out.insert(out.end(), std::make_move_iterator(evs.begin()),
                   std::make_move_iterator(evs.end()));
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  return x.seq < y.seq;
              });
    return out;
}

uint64_t
FlightRecorder::totalRecorded(uint32_t tid) const
{
    return tid < rings_.size() ? rings_[tid].total : 0;
}

uint64_t
FlightRecorder::dropped(uint32_t tid) const
{
    if (tid >= rings_.size())
        return 0;
    const Ring &r = rings_[tid];
    return r.total - r.buf.size();
}

uint64_t
FlightRecorder::droppedAll() const
{
    uint64_t n = 0;
    for (uint32_t tid = 0; tid < rings_.size(); ++tid)
        n += dropped(tid);
    return n;
}

void
FlightRecorder::clear()
{
    rings_.clear();
    nextSeq_ = 0;
    for (uint64_t &t : kindTotals_)
        t = 0;
}

} // namespace conair::obs
