/**
 * @file
 * Post-mortem root-cause diagnosis (src/obs/postmortem/).
 *
 * ConAir deliberately recovers without telling the developer *why* the
 * failure fired (paper §3.3 leaves diagnosis to the programmer).  This
 * engine closes that gap after the fact: it joins a FlightRecorder
 * trace captured in diagnosis recording mode
 * (VmConfig::recordSharedAccesses) with the static side of the ConAir
 * analysis — the failure site located by its tag, its failure-condition
 * seeds (conair/optimizer.h), and the backward slice
 * (analysis/slicing.h) — to reconstruct, per recovery episode:
 *
 *  - the *racy pair*: the failing thread's last shared read of an
 *    address on the failure's backward slice, paired with the
 *    conflicting write by another thread (or, for deadlocks, the lock
 *    acquisition the partner thread holds);
 *  - the *scheduler-switch window* between the two accesses (how many
 *    context switches separate them — the size of the racy window the
 *    schedule had to hit);
 *  - a *bug-pattern verdict* (atomicity violation / order violation /
 *    lost update / deadlock), checkable against the kernel taxonomy in
 *    src/apps/ (Table 2's root-cause column).
 *
 * Everything here is offline trace analysis: the engine never executes
 * the program and mutates nothing, so it can run on traces dumped by a
 * campaign abort long after the VM is gone.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conair/failure_sites.h"
#include "obs/trace.h"

namespace conair {
class JsonWriter;
}
namespace conair::ir {
class Module;
}

namespace conair::obs::pm {

/** The classic concurrency-bug patterns (CHESS/Lu et al. taxonomy,
 *  matching Table 2's root-cause column). */
enum class Verdict : uint8_t {
    AtomicityViolation, ///< reader saw another thread's transient state
    OrderViolation,     ///< reader ran before the enabling write
    LostUpdate,         ///< read-modify-write overlapped a foreign write
    Deadlock,           ///< circular lock wait
    Unknown,
};

const char *verdictName(Verdict v);

/** Inverse of verdictName ("lost-update" -> Verdict::LostUpdate);
 *  returns false on an unrecognised name.  Round-trip is test-pinned
 *  for every enumerator. */
bool verdictFromName(const std::string &name, Verdict &out);

/**
 * True when @p v is consistent with a Table 2 root-cause label as
 * printed by apps::rootCauseName ("A Vio.", "O Vio.", "A/O Vio.",
 * "deadlock").  Lost updates count as atomicity violations.
 */
bool verdictMatchesRootCause(Verdict v, const std::string &rootCause);

/** One shared access (or lock operation) lifted from the trace. */
struct AccessRef
{
    bool valid = false;
    uint64_t seq = 0;
    uint64_t clock = 0;
    uint64_t step = 0;
    uint32_t tid = 0;
    bool isStore = false;
    uint64_t addr = 0;  ///< packed cell address (obs::packCellAddr)
    uint64_t value = 0; ///< raw value bits transferred
    std::string tag;    ///< source tag of the access, when present
};

/** The diagnosis of one recovery episode (or terminal failure). */
struct EpisodeReport
{
    uint32_t tid = 0;          ///< failing thread
    std::string siteTag;       ///< "oracle.binlog_append.93", ...
    ca::FailureKind kind = ca::FailureKind::Assertion;
    bool recovered = false;    ///< false: the terminal FailureSite
    uint64_t retries = 0;
    uint64_t startClock = 0;
    uint64_t endClock = 0;

    Verdict verdict = Verdict::Unknown;
    std::string variable;      ///< racing global's name ("" if unknown)
    int64_t cellOffset = 0;    ///< offset within that global (arrays)
    AccessRef failingAccess;   ///< the read / lock on the failing thread
    AccessRef racingAccess;    ///< the conflicting access (other thread)
    uint64_t switchWindow = 0; ///< SchedSwitch events between the pair
    bool sliceInterproc = false; ///< slice escaped into an argument
    std::string evidence;      ///< one-line human rationale
};

/** The whole-trace diagnosis. */
struct RecoveryReport
{
    std::string program;  ///< kernel / program name
    std::string schedule; ///< repro token ("" for scripted runs)
    uint64_t events = 0;  ///< events ever recorded
    uint64_t dropped = 0; ///< lost to ring wraparound (may weaken pairs)
    uint64_t sharedAccessesSeen = 0; ///< SharedLoad+SharedStore totals
    std::vector<EpisodeReport> episodes;

    /** The first episode carrying a non-Unknown verdict (the headline
     *  diagnosis), or nullptr. */
    const EpisodeReport *primary() const;
};

/**
 * Diagnoses every recovery episode (RecoveryDone events) and terminal
 * failure (FailureSite events) in @p rec against @p m — the module the
 * traced run executed (the hardened build for a hardened-leg trace).
 * The trace should come from a diagnosis-mode run
 * (VmConfig::recordSharedAccesses); without SharedLoad/SharedStore
 * events, episodes are still listed but racy pairs stay unresolved.
 */
RecoveryReport diagnose(const FlightRecorder &rec, const ir::Module &m,
                        const std::string &program,
                        const std::string &schedule = {});

/** Human-readable report with an ASCII two-thread interleaving diagram
 *  per diagnosed episode. */
std::string renderText(const RecoveryReport &r);

/** Serialises @p r into an open writer position (the caller owns the
 *  surrounding document). */
void writeJson(JsonWriter &w, const RecoveryReport &r);

/** A standalone pretty-printed JSON document. */
std::string toJson(const RecoveryReport &r, int indent = 2);

} // namespace conair::obs::pm
