#include "obs/postmortem/diagnosis.h"

#include <algorithm>

#include "analysis/memory_class.h"
#include "analysis/slicing.h"
#include "conair/optimizer.h"
#include "ir/module.h"
#include "support/str.h"

namespace conair::obs::pm {

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::AtomicityViolation: return "atomicity-violation";
      case Verdict::OrderViolation: return "order-violation";
      case Verdict::LostUpdate: return "lost-update";
      case Verdict::Deadlock: return "deadlock";
      case Verdict::Unknown: return "unknown";
    }
    return "?";
}

bool
verdictFromName(const std::string &name, Verdict &out)
{
    for (Verdict v :
         {Verdict::AtomicityViolation, Verdict::OrderViolation,
          Verdict::LostUpdate, Verdict::Deadlock, Verdict::Unknown}) {
        if (name == verdictName(v)) {
            out = v;
            return true;
        }
    }
    return false;
}

bool
verdictMatchesRootCause(Verdict v, const std::string &rootCause)
{
    if (rootCause == "deadlock")
        return v == Verdict::Deadlock;
    if (rootCause == "A Vio.")
        return v == Verdict::AtomicityViolation ||
               v == Verdict::LostUpdate;
    if (rootCause == "O Vio.")
        return v == Verdict::OrderViolation;
    if (rootCause == "A/O Vio.")
        return v == Verdict::AtomicityViolation ||
               v == Verdict::OrderViolation || v == Verdict::LostUpdate;
    return false;
}

const EpisodeReport *
RecoveryReport::primary() const
{
    for (const EpisodeReport &e : episodes)
        if (e.verdict != Verdict::Unknown)
            return &e;
    return episodes.empty() ? nullptr : &episodes.front();
}

namespace {

/** The failure class a site tag encodes ("assert.fn.line", ...). */
ca::FailureKind
kindFromTag(const std::string &tag)
{
    if (tag.rfind("assert.", 0) == 0)
        return ca::FailureKind::Assertion;
    if (tag.rfind("oracle.", 0) == 0 || tag.rfind("out.", 0) == 0)
        return ca::FailureKind::WrongOutput;
    if (tag.rfind("deref.", 0) == 0)
        return ca::FailureKind::Segfault;
    if (tag.rfind("lock.", 0) == 0)
        return ca::FailureKind::Deadlock;
    // Hang failure tags are ";"-joined lock tags; any lock.* inside
    // means deadlock.
    if (tag.find("lock.") != std::string::npos)
        return ca::FailureKind::Deadlock;
    return ca::FailureKind::Assertion;
}

/** Locates the (first) instruction carrying @p tag in @p m. */
const ir::Instruction *
findInstByTag(const ir::Module &m, const std::string &tag)
{
    if (tag.empty())
        return nullptr;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &inst : bb->insts())
                if (inst->tag() == tag)
                    return inst.get();
    return nullptr;
}

/** Cell segments as packed by the VM (vm::Ptr::Seg order). */
constexpr uint8_t kSegGlobal = 1;

/** One episode skeleton lifted from the event stream. */
struct Episode
{
    uint32_t tid = 0;
    std::string tag;
    bool recovered = false;
    uint64_t retries = 0;
    uint64_t startClock = 0;
    uint64_t endClock = 0;
    uint64_t endSeq = 0;
};

AccessRef
accessOf(const TraceEvent &ev)
{
    AccessRef a;
    a.valid = true;
    a.seq = ev.seq;
    a.clock = ev.clock;
    a.step = ev.step;
    a.tid = ev.tid;
    a.isStore = ev.kind == EventKind::SharedStore;
    a.addr = ev.a;
    a.value = ev.b;
    a.tag = ev.tag;
    return a;
}

/** SchedSwitch events strictly between @p lo and @p hi (seq order). */
uint64_t
switchesBetween(const std::vector<uint64_t> &switchSeqs, uint64_t lo,
                uint64_t hi)
{
    if (hi < lo)
        std::swap(lo, hi);
    auto b = std::upper_bound(switchSeqs.begin(), switchSeqs.end(), lo);
    auto e = std::lower_bound(switchSeqs.begin(), switchSeqs.end(), hi);
    return e > b ? uint64_t(e - b) : 0;
}

std::string
bitsStr(uint64_t bits)
{
    int64_t s = int64_t(bits);
    if (s > -(int64_t(1) << 48) && s < (int64_t(1) << 48))
        return strfmt("%lld", (long long)s);
    return strfmt("0x%llx", (unsigned long long)bits);
}

/** Human name of a packed cell address against @p m's global table. */
std::string
cellName(const ir::Module &m, uint64_t packed)
{
    uint8_t seg = cellSeg(packed);
    uint32_t block = cellBlock(packed);
    int64_t off = cellOffset(packed);
    if (seg == kSegGlobal && block < m.globals().size()) {
        std::string n = m.globals()[block]->name();
        if (off != 0)
            n += strfmt("[%lld]", (long long)off);
        return n;
    }
    return strfmt("%s#%u+%lld", seg == kSegGlobal ? "global" : "heap",
                  block, (long long)off);
}

/** Everything diagnose() lifts out of one merged event stream. */
struct TraceIndex
{
    std::vector<AccessRef> accesses;       ///< shared loads/stores
    std::vector<uint64_t> switchSeqs;      ///< SchedSwitch seqs, sorted
    std::vector<const TraceEvent *> locks; ///< LockAcquire events
    std::vector<const TraceEvent *> lockBlocks; ///< LockBlock/Timeout
    std::vector<AccessRef> rollbacks;      ///< per-Rollback markers
    std::vector<Episode> episodes;
};

TraceIndex
indexTrace(const std::vector<TraceEvent> &merged)
{
    TraceIndex ix;
    for (const TraceEvent &ev : merged) {
        switch (ev.kind) {
          case EventKind::SharedLoad:
          case EventKind::SharedStore:
            ix.accesses.push_back(accessOf(ev));
            break;
          case EventKind::SchedSwitch:
            ix.switchSeqs.push_back(ev.seq);
            break;
          case EventKind::LockAcquire:
            ix.locks.push_back(&ev);
            break;
          case EventKind::LockBlock:
          case EventKind::LockTimeout:
            ix.lockBlocks.push_back(&ev);
            break;
          case EventKind::Rollback: {
            AccessRef r;
            r.valid = true;
            r.seq = ev.seq;
            r.clock = ev.clock;
            r.tid = ev.tid;
            ix.rollbacks.push_back(r);
            break;
          }
          case EventKind::RecoveryDone: {
            Episode e;
            e.tid = ev.tid;
            e.tag = ev.tag;
            e.recovered = true;
            e.retries = ev.a;
            e.startClock = ev.b;
            e.endClock = ev.clock;
            e.endSeq = ev.seq;
            ix.episodes.push_back(e);
            break;
          }
          case EventKind::FailureSite: {
            Episode e;
            e.tid = ev.tid;
            e.tag = ev.tag;
            e.recovered = false;
            e.startClock = ev.clock;
            e.endClock = ev.clock;
            e.endSeq = ev.seq;
            ix.episodes.push_back(e);
            break;
          }
          default:
            break;
        }
    }
    return ix;
}

/** The first rollback of @p e — the moment the original failing
 *  execution ended.  Racy-pair reconstruction looks *before* this
 *  boundary so it sees the access that actually failed, not a retry. */
uint64_t
episodeBoundary(const TraceIndex &ix, const Episode &e)
{
    if (!e.recovered)
        return e.endSeq;
    uint64_t best = e.endSeq;
    for (const AccessRef &r : ix.rollbacks)
        if (r.tid == e.tid && r.clock >= e.startClock &&
            r.seq < e.endSeq) {
            best = std::min(best, r.seq);
        }
    return best;
}

/** Candidate racing globals: ids of globals read by loads on the
 *  failure's backward slice.  @p interproc reports whether the slice
 *  escaped into a function argument (§4.3 shape — the enabling read
 *  then lives in a caller, so the dynamic fallback must take over). */
std::vector<uint32_t>
sliceCandidates(const ir::Module &m, const ir::Instruction *siteInst,
                ca::FailureKind kind, bool hasOracle, bool *interproc)
{
    std::vector<uint32_t> out;
    *interproc = false;
    if (!siteInst || kind == ca::FailureKind::Deadlock)
        return out;
    const ir::Function *fn = siteInst->parent()->parent();

    // FailureSite wants a mutable Instruction*; the seed/slice
    // computation only reads it.
    ca::FailureSite site{const_cast<ir::Instruction *>(siteInst), kind,
                         0, hasOracle};
    analysis::ControlDeps cdeps(*fn);
    std::vector<const ir::Value *> seeds =
        ca::failureConditionSeeds(site, cdeps);
    analysis::SliceResult slice =
        analysis::backwardSlice(*fn, seeds, cdeps);
    *interproc = !slice.args.empty();

    for (const ir::Instruction *inst : slice.insts) {
        if (inst->opcode() != ir::Opcode::Load)
            continue;
        if (const ir::Global *g = analysis::rootGlobal(inst->operand(0)))
            out.push_back(g->id());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/** Latest store to @p addr by a thread other than @p tid with
 *  seq < @p before.  Invalid AccessRef when none. */
AccessRef
lastForeignStoreBefore(const TraceIndex &ix, uint64_t addr, uint32_t tid,
                       uint64_t before)
{
    AccessRef best;
    for (const AccessRef &a : ix.accesses) {
        if (a.seq >= before)
            break;
        if (a.isStore && a.addr == addr && a.tid != tid)
            best = a;
    }
    return best;
}

/** Earliest store to @p addr by a thread other than @p tid in
 *  (@p after, @p until]. */
AccessRef
firstForeignStoreIn(const TraceIndex &ix, uint64_t addr, uint32_t tid,
                    uint64_t after, uint64_t until)
{
    for (const AccessRef &a : ix.accesses) {
        if (a.seq <= after)
            continue;
        if (a.seq > until)
            break;
        if (a.isStore && a.addr == addr && a.tid != tid)
            return a;
    }
    return {};
}

/** T's own earliest store to @p addr in (@p after, @p until]. */
AccessRef
ownStoreIn(const TraceIndex &ix, uint64_t addr, uint32_t tid,
           uint64_t after, uint64_t until)
{
    for (const AccessRef &a : ix.accesses) {
        if (a.seq <= after)
            continue;
        if (a.seq > until)
            break;
        if (a.isStore && a.addr == addr && a.tid == tid)
            return a;
    }
    return {};
}

bool
hasConflict(const TraceIndex &ix, const AccessRef &load,
            uint64_t episodeEnd)
{
    return lastForeignStoreBefore(ix, load.addr, load.tid, load.seq)
               .valid ||
           firstForeignStoreIn(ix, load.addr, load.tid, load.seq,
                               episodeEnd)
               .valid;
}

/** Deadlock diagnosis: the mutex is named statically from the lock
 *  site's address operand (falling back to the blocked thread's last
 *  LockBlock event), the partner is whoever last acquired it. */
void
diagnoseDeadlock(const TraceIndex &ix, const ir::Module &m,
                 const ir::Instruction *siteInst, uint64_t boundary,
                 EpisodeReport &ep)
{
    ep.verdict = Verdict::Deadlock;

    // The contended lock cell: statically from the site instruction,
    // dynamically from the thread's last block event.
    const ir::Global *mutexGlobal =
        siteInst && siteInst->numOperands() > 0
            ? analysis::rootGlobal(siteInst->operand(0))
            : nullptr;
    uint64_t mutexBlock = UINT64_MAX;
    if (mutexGlobal)
        mutexBlock = mutexGlobal->id();

    const TraceEvent *blocked = nullptr;
    for (const TraceEvent *ev : ix.lockBlocks) {
        if (ev->seq > boundary)
            break;
        if (ev->tid == ep.tid &&
            (mutexBlock == UINT64_MAX || ev->a == mutexBlock))
            blocked = ev;
    }
    if (!mutexGlobal && blocked && blocked->a < m.globals().size() &&
        m.globals()[blocked->a]->isMutex())
        mutexGlobal = m.globals()[blocked->a].get();
    if (mutexBlock == UINT64_MAX && blocked)
        mutexBlock = blocked->a;

    if (mutexGlobal)
        ep.variable = mutexGlobal->name();
    else if (mutexBlock != UINT64_MAX)
        ep.variable = strfmt("mutex#%llu",
                             (unsigned long long)mutexBlock);

    if (blocked) {
        ep.failingAccess.valid = true;
        ep.failingAccess.seq = blocked->seq;
        ep.failingAccess.clock = blocked->clock;
        ep.failingAccess.step = blocked->step;
        ep.failingAccess.tid = blocked->tid;
        ep.failingAccess.addr =
            packCellAddr(kSegGlobal, uint32_t(mutexBlock), 0);
        ep.failingAccess.tag = blocked->tag;
    }

    // Partner: the last thread to acquire the contended mutex before
    // the failing thread gave up on it.
    const TraceEvent *holder = nullptr;
    for (const TraceEvent *ev : ix.locks) {
        if (ev->seq > boundary)
            break;
        if (ev->tid != ep.tid && ev->a == mutexBlock)
            holder = ev;
    }
    if (holder) {
        ep.racingAccess.valid = true;
        ep.racingAccess.seq = holder->seq;
        ep.racingAccess.clock = holder->clock;
        ep.racingAccess.step = holder->step;
        ep.racingAccess.tid = holder->tid;
        ep.racingAccess.addr = ep.failingAccess.addr;
        ep.racingAccess.tag = holder->tag;
        if (ep.failingAccess.valid)
            ep.switchWindow = switchesBetween(
                ix.switchSeqs, holder->seq, ep.failingAccess.seq);
        ep.evidence = strfmt(
            "t%u blocked acquiring `%s` while t%u has held it since "
            "seq %llu",
            ep.tid, ep.variable.c_str(), holder->tid,
            (unsigned long long)holder->seq);
    } else {
        ep.evidence = strfmt("t%u blocked acquiring `%s` (holder not "
                             "in retained trace)",
                             ep.tid, ep.variable.c_str());
    }
}

void
diagnoseRace(const TraceIndex &ix, const ir::Module &m,
             const std::vector<uint32_t> &candidates, uint64_t boundary,
             uint64_t episodeEnd, EpisodeReport &ep)
{
    // The failing read: the failing thread's latest shared load before
    // its first rollback whose address is rooted at a slice candidate,
    // preferring loads that actually have a conflicting foreign write.
    // Scanning latest-first matches the ConAir region shape: the read
    // feeding the failure condition is the last shared read before the
    // site.
    auto isCandidate = [&](const AccessRef &a) {
        if (candidates.empty())
            return false;
        return cellSeg(a.addr) == kSegGlobal &&
               std::binary_search(candidates.begin(), candidates.end(),
                                  cellBlock(a.addr));
    };

    AccessRef load;
    for (int pass = 0; pass < 2 && !load.valid; ++pass) {
        bool requireConflict = pass == 0;
        for (auto it = ix.accesses.rbegin(); it != ix.accesses.rend();
             ++it) {
            const AccessRef &a = *it;
            if (a.seq >= boundary || a.tid != ep.tid || a.isStore)
                continue;
            if (!isCandidate(a))
                continue;
            if (requireConflict && !hasConflict(ix, a, episodeEnd))
                continue;
            load = a;
            break;
        }
    }
    // Dynamic fallback: the slice escaped into an argument (§4.3
    // inter-procedural shape) or found nothing — take the failing
    // thread's latest conflicted shared load instead.
    if (!load.valid) {
        for (auto it = ix.accesses.rbegin(); it != ix.accesses.rend();
             ++it) {
            const AccessRef &a = *it;
            if (a.seq >= boundary || a.tid != ep.tid || a.isStore)
                continue;
            if (!hasConflict(ix, a, episodeEnd))
                continue;
            load = a;
            break;
        }
    }
    if (!load.valid)
        return;

    ep.failingAccess = load;
    ep.variable = cellName(m, load.addr);
    ep.cellOffset = cellOffset(load.addr);
    if (cellSeg(load.addr) == kSegGlobal &&
        cellBlock(load.addr) < m.globals().size())
        ep.variable = m.globals()[cellBlock(load.addr)]->name();

    AccessRef pre =
        lastForeignStoreBefore(ix, load.addr, load.tid, load.seq);
    AccessRef mid = firstForeignStoreIn(ix, load.addr, load.tid,
                                        load.seq, episodeEnd);
    AccessRef own = ownStoreIn(ix, load.addr, load.tid, load.seq,
                               boundary);

    if (own.valid) {
        AccessRef between = firstForeignStoreIn(
            ix, load.addr, load.tid, load.seq, own.seq);
        if (between.valid) {
            ep.verdict = Verdict::LostUpdate;
            ep.racingAccess = between;
            ep.evidence = strfmt(
                "t%u wrote `%s` at seq %llu between t%u's read "
                "(seq %llu) and write-back (seq %llu): the foreign "
                "update is lost",
                between.tid, ep.variable.c_str(),
                (unsigned long long)between.seq, ep.tid,
                (unsigned long long)load.seq,
                (unsigned long long)own.seq);
        }
    }
    if (ep.verdict == Verdict::Unknown && pre.valid) {
        // The reader observed state another thread had already
        // written — it caught the writer mid-flight (the classic
        // atomicity violation: MySQL1's rotator had published
        // log_open=0 but not yet restored it).
        ep.verdict = Verdict::AtomicityViolation;
        ep.racingAccess = pre;
        ep.evidence = strfmt(
            "t%u read `%s` = %s at seq %llu, seeing the transient "
            "state t%u stored at seq %llu",
            ep.tid, ep.variable.c_str(), bitsStr(load.value).c_str(),
            (unsigned long long)load.seq, pre.tid,
            (unsigned long long)pre.seq);
    }
    if (ep.verdict == Verdict::Unknown && mid.valid) {
        // No thread had written the cell yet: the reader simply ran
        // before the enabling write (order violation; recovery waits
        // it out by retrying).
        ep.verdict = Verdict::OrderViolation;
        ep.racingAccess = mid;
        ep.evidence = strfmt(
            "t%u read `%s` = %s at seq %llu before t%u's enabling "
            "write of %s landed at seq %llu",
            ep.tid, ep.variable.c_str(), bitsStr(load.value).c_str(),
            (unsigned long long)load.seq, mid.tid,
            bitsStr(mid.value).c_str(),
            (unsigned long long)mid.seq);
    }
    if (ep.racingAccess.valid)
        ep.switchWindow = switchesBetween(ix.switchSeqs, load.seq,
                                          ep.racingAccess.seq);
}

} // namespace

RecoveryReport
diagnose(const FlightRecorder &rec, const ir::Module &m,
         const std::string &program, const std::string &schedule)
{
    RecoveryReport rep;
    rep.program = program;
    rep.schedule = schedule;
    rep.events = rec.totalRecordedAll();
    rep.dropped = rec.droppedAll();
    rep.sharedAccessesSeen = rec.totalOf(EventKind::SharedLoad) +
                             rec.totalOf(EventKind::SharedStore);

    // The index holds pointers into the merged stream; keep it alive
    // for the whole diagnosis.
    std::vector<TraceEvent> merged = rec.merged();
    TraceIndex ix = indexTrace(merged);

    for (const Episode &e : ix.episodes) {
        EpisodeReport ep;
        ep.tid = e.tid;
        ep.siteTag = e.tag;
        ep.recovered = e.recovered;
        ep.retries = e.retries;
        ep.startClock = e.startClock;
        ep.endClock = e.endClock;

        // Hang failure sites carry no tag (no single site); borrow the
        // thread's last lock-block tag so the static join has a name.
        if (ep.siteTag.empty()) {
            for (const TraceEvent *ev : ix.lockBlocks)
                if (ev->tid == ep.tid)
                    ep.siteTag = ev->tag;
        }
        ep.kind = kindFromTag(ep.siteTag);

        uint64_t boundary = episodeBoundary(ix, e);
        uint64_t episodeEnd = e.recovered ? e.endSeq : UINT64_MAX;
        const ir::Instruction *siteInst = findInstByTag(m, ep.siteTag);

        if (ep.kind == ca::FailureKind::Deadlock) {
            diagnoseDeadlock(ix, m, siteInst, boundary, ep);
        } else {
            bool interproc = false;
            std::vector<uint32_t> candidates = sliceCandidates(
                m, siteInst, ep.kind,
                ep.siteTag.rfind("oracle.", 0) == 0, &interproc);
            ep.sliceInterproc = interproc;
            diagnoseRace(ix, m, candidates, boundary, episodeEnd, ep);
        }
        rep.episodes.push_back(std::move(ep));
    }
    return rep;
}

} // namespace conair::obs::pm
