/**
 * @file
 * RecoveryReport exporters: the human-readable report (with an ASCII
 * two-thread interleaving diagram per episode) and the JSON document
 * the campaign runner embeds in BENCH_explore.json.
 */
#include "obs/postmortem/diagnosis.h"

#include <algorithm>

#include "support/json.h"
#include "support/str.h"

namespace conair::obs::pm {

namespace {

std::string
bitsStr(uint64_t bits)
{
    int64_t s = int64_t(bits);
    if (s > -(int64_t(1) << 48) && s < (int64_t(1) << 48))
        return strfmt("%lld", (long long)s);
    return strfmt("0x%llx", (unsigned long long)bits);
}

/** One row of the two-column interleaving diagram. */
struct DiagramRow
{
    uint64_t seq;
    bool left; ///< failing thread's column
    std::string text;
};

constexpr size_t kCol = 34;

std::string
padded(const std::string &s)
{
    std::string out = s.substr(0, kCol);
    out.resize(kCol, ' ');
    return out;
}

std::string
accessLine(const EpisodeReport &ep, const AccessRef &a,
           const char *role)
{
    std::string op;
    if (ep.verdict == Verdict::Deadlock)
        op = a.tid == ep.tid ? strfmt("block on `%s`",
                                      ep.variable.c_str())
                             : strfmt("acquire `%s`",
                                      ep.variable.c_str());
    else
        op = strfmt("%s %s %s %s", a.isStore ? "store" : "load",
                    ep.variable.c_str(), a.isStore ? "<-" : "->",
                    bitsStr(a.value).c_str());
    return strfmt("[seq %llu] %s%s", (unsigned long long)a.seq,
                  op.c_str(), role);
}

/**
 * The ASCII interleaving diagram: the failing thread on the left, the
 * racing thread on the right, rows in global seq order, with the
 * scheduler-switch window rendered between the pair.
 */
std::string
renderDiagram(const EpisodeReport &ep)
{
    if (!ep.failingAccess.valid || !ep.racingAccess.valid)
        return {};

    std::vector<DiagramRow> rows;
    rows.push_back({ep.failingAccess.seq, true,
                    accessLine(ep, ep.failingAccess, "")});
    if (!ep.failingAccess.tag.empty())
        rows.push_back({ep.failingAccess.seq, true,
                        "          @" + ep.failingAccess.tag});
    rows.push_back({ep.racingAccess.seq, false,
                    accessLine(ep, ep.racingAccess, "")});
    if (!ep.racingAccess.tag.empty())
        rows.push_back({ep.racingAccess.seq, false,
                        "          @" + ep.racingAccess.tag});
    std::stable_sort(rows.begin(), rows.end(),
                     [](const DiagramRow &a, const DiagramRow &b) {
                         return a.seq < b.seq;
                     });

    std::string out;
    out += "    " + padded(strfmt("t%u (failing)", ep.tid)) + " | " +
           strfmt("t%u (racing)", ep.racingAccess.tid) + "\n";
    out += "    " + std::string(kCol, '-') + "-+-" +
           std::string(kCol, '-') + "\n";

    uint64_t pairLo = std::min(ep.failingAccess.seq,
                               ep.racingAccess.seq);
    uint64_t pairHi = std::max(ep.failingAccess.seq,
                               ep.racingAccess.seq);
    bool windowDrawn = false;
    for (const DiagramRow &r : rows) {
        if (!windowDrawn && r.seq == pairHi && pairLo != pairHi) {
            std::string w = strfmt(
                "~~~ %llu scheduler switch%s ~~~",
                (unsigned long long)ep.switchWindow,
                ep.switchWindow == 1 ? "" : "es");
            size_t width = 2 * kCol + 3;
            size_t lead = w.size() < width ? (width - w.size()) / 2 : 0;
            out += "    " + std::string(lead, ' ') + w + "\n";
            windowDrawn = true;
        }
        if (r.left)
            out += "    " + padded(r.text) + " |\n";
        else
            out += "    " + std::string(kCol, ' ') + " | " + r.text +
                   "\n";
    }
    if (ep.recovered)
        out += "    " +
               padded(strfmt("[recovery: %llu retr%s, %.1f us]",
                             (unsigned long long)ep.retries,
                             ep.retries == 1 ? "y" : "ies",
                             double(ep.endClock - ep.startClock) * 0.1)) +
               " |\n";
    else
        out += "    " + padded("[terminal failure: not recovered]") +
               " |\n";
    return out;
}

void
writeAccessJson(JsonWriter &w, const AccessRef &a)
{
    w.beginObject();
    w.key("seq").value(a.seq);
    w.key("clock").value(a.clock);
    w.key("step").value(a.step);
    w.key("tid").value(a.tid);
    w.key("op").value(a.isStore ? "store" : "load");
    w.key("seg").value(uint64_t(cellSeg(a.addr)));
    w.key("block").value(uint64_t(cellBlock(a.addr)));
    w.key("offset").value(int64_t(cellOffset(a.addr)));
    w.key("value").value(a.value);
    if (!a.tag.empty())
        w.key("tag").value(a.tag);
    w.endObject();
}

} // namespace

std::string
renderText(const RecoveryReport &r)
{
    std::string out;
    out += strfmt("=== recovery diagnosis: %s", r.program.c_str());
    if (!r.schedule.empty())
        out += " [" + r.schedule + "]";
    out += " ===\n";
    out += strfmt("trace: %llu events (%llu dropped), %llu shared "
                  "accesses, %zu episode%s\n",
                  (unsigned long long)r.events,
                  (unsigned long long)r.dropped,
                  (unsigned long long)r.sharedAccessesSeen,
                  r.episodes.size(),
                  r.episodes.size() == 1 ? "" : "s");
    if (r.dropped)
        out += "warning: ring wraparound dropped events; racy pairs "
               "may be incomplete (raise the recorder capacity)\n";

    size_t n = 0;
    for (const EpisodeReport &ep : r.episodes) {
        out += strfmt("\nepisode %zu: %s  t%u  %s", ++n,
                      ep.siteTag.empty() ? "(untagged)"
                                         : ep.siteTag.c_str(),
                      ep.tid,
                      ep.recovered
                          ? strfmt("recovered after %llu retr%s",
                                   (unsigned long long)ep.retries,
                                   ep.retries == 1 ? "y" : "ies")
                                .c_str()
                          : "NOT recovered (terminal failure)");
        out += "\n";
        out += strfmt("  failure class: %s\n",
                      ca::failureKindName(ep.kind));
        out += strfmt("  verdict: %s", verdictName(ep.verdict));
        if (!ep.variable.empty())
            out += strfmt(" on `%s`", ep.variable.c_str());
        if (ep.sliceInterproc)
            out += "  (slice crossed a call boundary; dynamic pair)";
        out += "\n";
        if (!ep.evidence.empty())
            out += "  evidence: " + ep.evidence + "\n";
        if (ep.failingAccess.valid && ep.racingAccess.valid) {
            out += strfmt("  racy pair (window = %llu scheduler "
                          "switch%s):\n\n",
                          (unsigned long long)ep.switchWindow,
                          ep.switchWindow == 1 ? "" : "es");
            out += renderDiagram(ep);
        } else {
            out += "  racy pair: unresolved (no diagnosis-mode shared "
                   "accesses in the retained trace?)\n";
        }
    }
    if (r.episodes.empty())
        out += "\n(no recovery episodes or failures in the trace)\n";
    return out;
}

void
writeJson(JsonWriter &w, const RecoveryReport &r)
{
    w.beginObject();
    w.key("program").value(r.program);
    if (!r.schedule.empty())
        w.key("schedule").value(r.schedule);
    w.key("events").value(r.events);
    w.key("dropped").value(r.dropped);
    w.key("shared_accesses").value(r.sharedAccessesSeen);
    w.key("episodes").beginArray();
    for (const EpisodeReport &ep : r.episodes) {
        w.beginObject();
        w.key("tid").value(ep.tid);
        w.key("site").value(ep.siteTag);
        w.key("failure_class").value(ca::failureKindName(ep.kind));
        w.key("recovered").value(ep.recovered);
        w.key("retries").value(ep.retries);
        w.key("start_clock").value(ep.startClock);
        w.key("end_clock").value(ep.endClock);
        w.key("verdict").value(verdictName(ep.verdict));
        w.key("variable").value(ep.variable);
        w.key("cell_offset").value(ep.cellOffset);
        w.key("switch_window").value(ep.switchWindow);
        w.key("slice_interproc").value(ep.sliceInterproc);
        w.key("evidence").value(ep.evidence);
        if (ep.failingAccess.valid) {
            w.key("failing_access");
            writeAccessJson(w, ep.failingAccess);
        }
        if (ep.racingAccess.valid) {
            w.key("racing_access");
            writeAccessJson(w, ep.racingAccess);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
toJson(const RecoveryReport &r, int indent)
{
    JsonWriter w(indent);
    writeJson(w, r);
    return w.str();
}

} // namespace conair::obs::pm
