#include "obs/replay/minimize.h"

#include <algorithm>

#include "obs/postmortem/diagnosis.h"
#include "vm/interp.h"

namespace conair::obs::replay {

namespace {

using SwitchList = std::vector<vm::ReplaySchedule::Switch>;

/** Headline diagnosis verdict of a diagnosis-mode trace ("" if the
 *  postmortem pass resolved nothing). */
std::string
verdictOf(const FlightRecorder &rec, const ir::Module &m,
          const ReplayLog &log)
{
    pm::RecoveryReport rep =
        pm::diagnose(rec, m, log.program, log.scheduleToken);
    const pm::EpisodeReport *p = rep.primary();
    return p ? pm::verdictName(p->verdict) : std::string();
}

} // namespace

MinimizeResult
minimizeReplayLog(const ir::Module &m, const ReplayLog &log,
                  const MinimizeOptions &opts)
{
    MinimizeResult res;
    res.originalSwitches = log.switches.size();

    const bool diagMode = opts.preserveVerdict || log.accessCount > 0;

    // The ddmin predicate: does this switch subset still reproduce the
    // recorded failure (and, optionally, the same diagnosis verdict)?
    bool needVerdict = false; // set after the baseline probe
    auto probe = [&](const SwitchList &cand,
                     std::string *verdictOut) -> bool {
        ++res.probes;
        FlightRecorder rec(4096, RecorderMode::Grow);
        ReplayInstruments ins;
        if (needVerdict || verdictOut) {
            ins.recorder = &rec;
            ins.recordSharedAccesses = true;
        }
        vm::RunResult r = replayTolerant(m, log, cand, opts.engine,
                                         ins.recorder ? &ins : nullptr);
        if (vm::outcomeName(r.outcome) != log.outcome ||
            r.failureTag != log.failureTag)
            return false;
        if (verdictOut)
            *verdictOut = verdictOf(rec, m, log);
        if (needVerdict)
            return verdictOf(rec, m, log) == res.verdict;
        return true;
    };
    auto budgetLeft = [&] {
        return opts.maxProbes == 0 || res.probes < opts.maxProbes;
    };

    // Baseline: the full switch list must reproduce under tolerant
    // replay, or shrinking would converge towards noise.
    {
        std::string v;
        if (!probe(log.switches,
                   opts.preserveVerdict ? &v : nullptr)) {
            res.err = "baseline tolerant replay does not reproduce "
                      "the recorded failure (" +
                      log.outcome +
                      (log.failureTag.empty() ? ""
                                              : " / " + log.failureTag) +
                      ")";
            return res;
        }
        if (opts.preserveVerdict) {
            res.verdict = v;
            needVerdict = !v.empty();
        }
    }

    // ddmin by complement reduction (Zeller & Hildebrandt).
    SwitchList cur = log.switches;
    if (!cur.empty() && budgetLeft() && probe({}, nullptr)) {
        cur.clear();
    } else {
        size_t n = 2;
        while (cur.size() >= 2 && budgetLeft()) {
            const size_t chunk = (cur.size() + n - 1) / n;
            bool reduced = false;
            for (size_t i = 0; i * chunk < cur.size() && budgetLeft();
                 ++i) {
                const size_t lo = i * chunk;
                const size_t hi = std::min(lo + chunk, cur.size());
                SwitchList complement;
                complement.reserve(cur.size() - (hi - lo));
                complement.insert(complement.end(), cur.begin(),
                                  cur.begin() + long(lo));
                complement.insert(complement.end(),
                                  cur.begin() + long(hi), cur.end());
                if (probe(complement, nullptr)) {
                    cur = std::move(complement);
                    n = std::max<size_t>(n - 1, 2);
                    reduced = true;
                    break;
                }
            }
            if (!reduced) {
                if (n >= cur.size())
                    break;
                n = std::min(cur.size(), n * 2);
            }
        }
    }

    // Re-record the minimised schedule into a fresh exact log: a
    // tolerant replay is itself deterministic, so observing it with a
    // Grow recorder yields a replay-grade switch list + fingerprint.
    FlightRecorder rec(4096, RecorderMode::Grow);
    ReplayInstruments ins;
    ins.recorder = &rec;
    ins.recordSharedAccesses = diagMode;
    vm::RunResult run = replayTolerant(m, log, cur, opts.engine, &ins);
    if (vm::outcomeName(run.outcome) != log.outcome ||
        run.failureTag != log.failureTag) {
        res.err = "re-recording run lost the failure (got " +
                  std::string(vm::outcomeName(run.outcome)) + ")";
        return res;
    }

    vm::VmConfig cfg;
    log.applyTo(cfg);
    cfg.engine = opts.engine;
    if (!buildReplayLog(log.program, log.scheduleToken, cfg, rec, run,
                        res.minimized, res.err))
        return res;

    // The output carries the standard faithfulness contract: one
    // strict replay must match its fingerprint before we hand it out.
    ReplayRun verify = replayLog(m, res.minimized, opts.engine);
    if (!verify.faithful) {
        res.err =
            "minimised log failed strict verification: " +
            verify.mismatch;
        return res;
    }

    res.minimizedSwitches = res.minimized.switches.size();
    res.ok = true;
    return res;
}

} // namespace conair::obs::replay
