#include "obs/replay/replay_run.h"

#include "support/str.h"
#include "vm/interp.h"

namespace conair::obs::replay {

namespace {

vm::VmConfig
replayConfig(const ReplayLog &log, vm::ExecEngine engine)
{
    vm::VmConfig cfg;
    log.applyTo(cfg);
    cfg.engine = engine;
    return cfg;
}

/** The differential check every replay runs through: first diverging
 *  field, or empty when the replay is faithful. */
std::string
fingerprintDiff(const ReplayLog &log, const vm::RunResult &r)
{
    if (!r.replayDivergence.empty())
        return "divergence: " + r.replayDivergence;
    if (log.outcome != vm::outcomeName(r.outcome))
        return strfmt("outcome %s vs %s recorded",
                      vm::outcomeName(r.outcome), log.outcome.c_str());
    if (log.failureTag != r.failureTag)
        return "failure tag '" + r.failureTag + "' vs '" +
               log.failureTag + "' recorded";
    if (log.exitCode != r.exitCode)
        return strfmt("exit %lld vs %lld recorded",
                      (long long)r.exitCode, (long long)log.exitCode);
    if (log.finalClock != r.clock)
        return strfmt("clock %llu vs %llu recorded",
                      (unsigned long long)r.clock,
                      (unsigned long long)log.finalClock);
    if (log.finalSteps != r.stats.steps)
        return strfmt("steps %llu vs %llu recorded",
                      (unsigned long long)r.stats.steps,
                      (unsigned long long)log.finalSteps);
    if (log.schedTicks != r.stats.schedTicks)
        return strfmt("schedTicks %llu vs %llu recorded",
                      (unsigned long long)r.stats.schedTicks,
                      (unsigned long long)log.schedTicks);
    if (log.memDigest != r.memDigest)
        return strfmt("memDigest %016llx vs %016llx recorded",
                      (unsigned long long)r.memDigest,
                      (unsigned long long)log.memDigest);
    return {};
}

/** Lock-acquisition order referee (when a recorder observed the
 *  replay): the replayed LockAcquire stream must equal the log's. */
std::string
lockOrderDiff(const ReplayLog &log, const FlightRecorder &rec)
{
    std::vector<ReplayLog::LockAcq> replayed;
    for (const TraceEvent &ev : rec.merged())
        if (ev.kind == EventKind::LockAcquire)
            replayed.push_back({ev.step, ev.tid, ev.a});
    if (replayed.size() != log.locks.size())
        return strfmt("lock acquisitions %zu vs %zu recorded",
                      replayed.size(), log.locks.size());
    for (size_t i = 0; i < replayed.size(); ++i)
        if (!(replayed[i] == log.locks[i]))
            return strfmt(
                "lock acquisition #%zu: thread %u block %llu at step "
                "%llu vs thread %u block %llu at step %llu recorded",
                i, replayed[i].tid,
                (unsigned long long)replayed[i].block,
                (unsigned long long)replayed[i].step, log.locks[i].tid,
                (unsigned long long)log.locks[i].block,
                (unsigned long long)log.locks[i].step);
    return {};
}

} // namespace

ReplayRun
replayLog(const ir::Module &m, const ReplayLog &log,
          vm::ExecEngine engine, const ReplayInstruments *ins)
{
    vm::VmConfig cfg = replayConfig(log, engine);
    vm::ReplaySchedule sched = log.schedule(/*tolerant=*/false);
    cfg.replay = &sched;
    if (ins) {
        cfg.recorder = ins->recorder;
        cfg.recordSharedAccesses =
            ins->recorder && ins->recordSharedAccesses;
        cfg.profiler = ins->profiler;
    }

    ReplayRun rr;
    rr.result = vm::runProgram(m, cfg);
    rr.mismatch = fingerprintDiff(log, rr.result);

    // The optional event-stream referees need the replay's own trace.
    if (rr.mismatch.empty() && ins && ins->recorder) {
        if (ins->checkLockOrder)
            rr.mismatch = lockOrderDiff(log, *ins->recorder);
        if (rr.mismatch.empty() && ins->recordSharedAccesses &&
            log.accessCount > 0) {
            auto [count, digest] = accessDigestOf(*ins->recorder);
            if (count != log.accessCount || digest != log.accessDigest)
                rr.mismatch = strfmt(
                    "shared-access stream %llu/%016llx vs "
                    "%llu/%016llx recorded",
                    (unsigned long long)count,
                    (unsigned long long)digest,
                    (unsigned long long)log.accessCount,
                    (unsigned long long)log.accessDigest);
        }
    }
    rr.faithful = rr.mismatch.empty();
    return rr;
}

vm::RunResult
replayTolerant(const ir::Module &m, const ReplayLog &log,
               const std::vector<vm::ReplaySchedule::Switch> &switches,
               vm::ExecEngine engine, const ReplayInstruments *ins)
{
    vm::VmConfig cfg = replayConfig(log, engine);
    vm::ReplaySchedule sched;
    sched.switches = switches;
    sched.tolerant = true;
    cfg.replay = &sched;
    if (ins) {
        cfg.recorder = ins->recorder;
        cfg.recordSharedAccesses =
            ins->recorder && ins->recordSharedAccesses;
    }
    return vm::runProgram(m, cfg);
}

} // namespace conair::obs::replay
