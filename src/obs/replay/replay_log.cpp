#include "obs/replay/replay_log.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "support/str.h"

namespace conair::obs::replay {

const char *
engineName(vm::ExecEngine e)
{
    switch (e) {
      case vm::ExecEngine::Decoded: return "decoded";
      case vm::ExecEngine::Reference: return "reference";
      case vm::ExecEngine::Fused: return "fused";
    }
    return "?";
}

bool
engineFromName(const std::string &name, vm::ExecEngine &out)
{
    if (name == "decoded")
        out = vm::ExecEngine::Decoded;
    else if (name == "reference")
        out = vm::ExecEngine::Reference;
    else if (name == "fused")
        out = vm::ExecEngine::Fused;
    else
        return false;
    return true;
}

vm::ReplaySchedule
ReplayLog::schedule(bool tolerant) const
{
    vm::ReplaySchedule s;
    s.switches = switches;
    s.tolerant = tolerant;
    return s;
}

void
ReplayLog::applyTo(vm::VmConfig &cfg) const
{
    cfg.policy = policy;
    if (policy == vm::SchedPolicy::Pct)
        cfg.pctDepth = std::max<uint32_t>(depth, 1);
    else if (policy == vm::SchedPolicy::PreemptBound)
        cfg.preemptBound = depth;
    cfg.pctHorizon = horizon;
    cfg.quantum = quantum;
    cfg.seed = seed;
    cfg.appSeed = appSeed;
    cfg.maxSteps = maxSteps;
    cfg.hangTimeout = hangTimeout;
    cfg.maxRetries = maxRetries;
    cfg.backoffMax = backoffMax;
    cfg.chaosRollbackEveryN = chaosEveryN;
    cfg.chaosMaxRollbacks = chaosMaxRollbacks;
    cfg.delays = delays;
}

//
// Serialization.  One field per line, fixed order, so equal logs
// serialise byte-identically (the record -> replay -> re-record test
// pins this).  String payloads take the rest of the line; kernel
// names, tokens, and site tags never contain newlines.
//

std::string
ReplayLog::serialize() const
{
    std::string o;
    o += "conair-replay v1\n";
    o += "program " + program + "\n";
    o += "token " + scheduleToken + "\n";
    o += strfmt("engine %s\n", engineName(engine));
    o += strfmt("policy %s\n", vm::schedPolicyName(policy));
    o += strfmt("depth %u\n", depth);
    o += strfmt("horizon %llu\n", (unsigned long long)horizon);
    o += strfmt("quantum %llu\n", (unsigned long long)quantum);
    o += strfmt("seed %llu\n", (unsigned long long)seed);
    o += strfmt("appseed %llu\n", (unsigned long long)appSeed);
    o += strfmt("maxsteps %llu\n", (unsigned long long)maxSteps);
    o += strfmt("hangtimeout %llu\n", (unsigned long long)hangTimeout);
    o += strfmt("maxretries %lld\n", (long long)maxRetries);
    o += strfmt("backoffmax %llu\n", (unsigned long long)backoffMax);
    o += strfmt("chaoseveryn %llu\n", (unsigned long long)chaosEveryN);
    o += strfmt("chaosmax %llu\n",
                (unsigned long long)chaosMaxRollbacks);
    for (const vm::DelayRule &d : delays)
        o += strfmt("delay %llu %llu %llu\n",
                    (unsigned long long)d.hintId,
                    (unsigned long long)d.delayTicks,
                    (unsigned long long)d.maxFires);
    o += "outcome " + outcome + "\n";
    o += "tag " + failureTag + "\n";
    o += strfmt("exit %lld\n", (long long)exitCode);
    o += strfmt("clock %llu\n", (unsigned long long)finalClock);
    o += strfmt("steps %llu\n", (unsigned long long)finalSteps);
    o += strfmt("schedticks %llu\n", (unsigned long long)schedTicks);
    o += strfmt("memdigest %016llx\n", (unsigned long long)memDigest);
    o += strfmt("accesses %llu %016llx\n",
                (unsigned long long)accessCount,
                (unsigned long long)accessDigest);
    o += strfmt("switches %zu\n", switches.size());
    for (const vm::ReplaySchedule::Switch &s : switches)
        o += strfmt("s %llu %u\n", (unsigned long long)s.step, s.tid);
    o += strfmt("locks %zu\n", locks.size());
    for (const LockAcq &l : locks)
        o += strfmt("l %llu %u %llu\n", (unsigned long long)l.step,
                    l.tid, (unsigned long long)l.block);
    o += "end\n";
    return o;
}

namespace {

/** Whole-string unsigned parse with overflow detection: the malformed
 *  inputs a hand-edited or truncated log file can contain must never
 *  become silent garbage. */
bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty() || s[0] < '0' || s[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseI64(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    size_t digits = s[0] == '-' ? 1 : 0;
    if (digits >= s.size() || s[digits] < '0' || s[digits] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseHex64(const std::string &s, uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = 10 + (c - 'a');
        else
            return false;
        v = (v << 4) | uint64_t(d);
    }
    out = v;
    return true;
}

/** Splits one log line into whitespace-separated fields. */
std::vector<std::string>
fields(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string f;
    while (is >> f)
        out.push_back(f);
    return out;
}

struct LineReader
{
    std::istringstream is;
    size_t lineNo = 0;
    std::string line;

    explicit LineReader(const std::string &text) : is(text) {}

    bool next()
    {
        if (!std::getline(is, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        ++lineNo;
        return true;
    }
};

} // namespace

bool
parseReplayLog(const std::string &text, ReplayLog &out, std::string &err)
{
    LineReader rd(text);
    auto fail = [&](const std::string &what) {
        err = strfmt("replay log line %zu: %s", rd.lineNo,
                     what.c_str());
        return false;
    };

    if (!rd.next() || rd.line != "conair-replay v1")
        return fail("missing 'conair-replay v1' header");

    ReplayLog log;
    bool sawOutcome = false, sawSteps = false, sawSwitches = false,
         sawLocks = false, sawEnd = false;

    while (rd.next()) {
        if (rd.line == "end") {
            sawEnd = true;
            break;
        }
        size_t sp = rd.line.find(' ');
        std::string key = rd.line.substr(0, sp);
        std::string rest =
            sp == std::string::npos ? "" : rd.line.substr(sp + 1);

        if (key == "program") {
            log.program = rest;
        } else if (key == "token") {
            log.scheduleToken = rest;
        } else if (key == "engine") {
            if (!engineFromName(rest, log.engine))
                return fail("unknown engine '" + rest + "'");
        } else if (key == "policy") {
            if (!vm::schedPolicyFromName(rest, log.policy))
                return fail("unknown policy '" + rest + "'");
        } else if (key == "depth") {
            uint64_t v;
            if (!parseU64(rest, v) || v > UINT32_MAX)
                return fail("bad depth '" + rest + "'");
            log.depth = uint32_t(v);
        } else if (key == "horizon") {
            if (!parseU64(rest, log.horizon))
                return fail("bad horizon '" + rest + "'");
        } else if (key == "quantum") {
            if (!parseU64(rest, log.quantum))
                return fail("bad quantum '" + rest + "'");
        } else if (key == "seed") {
            if (!parseU64(rest, log.seed))
                return fail("bad seed '" + rest + "'");
        } else if (key == "appseed") {
            if (!parseU64(rest, log.appSeed))
                return fail("bad appseed '" + rest + "'");
        } else if (key == "maxsteps") {
            if (!parseU64(rest, log.maxSteps))
                return fail("bad maxsteps '" + rest + "'");
        } else if (key == "hangtimeout") {
            if (!parseU64(rest, log.hangTimeout))
                return fail("bad hangtimeout '" + rest + "'");
        } else if (key == "maxretries") {
            if (!parseI64(rest, log.maxRetries))
                return fail("bad maxretries '" + rest + "'");
        } else if (key == "backoffmax") {
            if (!parseU64(rest, log.backoffMax))
                return fail("bad backoffmax '" + rest + "'");
        } else if (key == "chaoseveryn") {
            if (!parseU64(rest, log.chaosEveryN))
                return fail("bad chaoseveryn '" + rest + "'");
        } else if (key == "chaosmax") {
            if (!parseU64(rest, log.chaosMaxRollbacks))
                return fail("bad chaosmax '" + rest + "'");
        } else if (key == "delay") {
            auto f = fields(rest);
            vm::DelayRule d{};
            if (f.size() != 3 || !parseU64(f[0], d.hintId) ||
                !parseU64(f[1], d.delayTicks) ||
                !parseU64(f[2], d.maxFires))
                return fail("bad delay rule '" + rest + "'");
            log.delays.push_back(d);
        } else if (key == "outcome") {
            log.outcome = rest;
            sawOutcome = true;
        } else if (key == "tag") {
            log.failureTag = rest;
        } else if (key == "exit") {
            if (!parseI64(rest, log.exitCode))
                return fail("bad exit '" + rest + "'");
        } else if (key == "clock") {
            if (!parseU64(rest, log.finalClock))
                return fail("bad clock '" + rest + "'");
        } else if (key == "steps") {
            if (!parseU64(rest, log.finalSteps))
                return fail("bad steps '" + rest + "'");
            sawSteps = true;
        } else if (key == "schedticks") {
            if (!parseU64(rest, log.schedTicks))
                return fail("bad schedticks '" + rest + "'");
        } else if (key == "memdigest") {
            if (!parseHex64(rest, log.memDigest))
                return fail("bad memdigest '" + rest + "'");
        } else if (key == "accesses") {
            auto f = fields(rest);
            if (f.size() != 2 || !parseU64(f[0], log.accessCount) ||
                !parseHex64(f[1], log.accessDigest))
                return fail("bad accesses '" + rest + "'");
        } else if (key == "switches") {
            uint64_t n;
            if (!parseU64(rest, n))
                return fail("bad switch count '" + rest + "'");
            uint64_t prevStep = 0;
            log.switches.reserve(size_t(n));
            for (uint64_t i = 0; i < n; ++i) {
                if (!rd.next())
                    return fail("truncated switch list");
                auto f = fields(rd.line);
                uint64_t step, tid;
                if (f.size() != 3 || f[0] != "s" ||
                    !parseU64(f[1], step) || !parseU64(f[2], tid) ||
                    tid > UINT32_MAX)
                    return fail("bad switch '" + rd.line + "'");
                if (i > 0 && step <= prevStep)
                    return fail("switch steps not strictly increasing");
                prevStep = step;
                log.switches.push_back({step, uint32_t(tid)});
            }
            sawSwitches = true;
        } else if (key == "locks") {
            uint64_t n;
            if (!parseU64(rest, n))
                return fail("bad lock count '" + rest + "'");
            log.locks.reserve(size_t(n));
            for (uint64_t i = 0; i < n; ++i) {
                if (!rd.next())
                    return fail("truncated lock list");
                auto f = fields(rd.line);
                uint64_t step, tid, block;
                if (f.size() != 4 || f[0] != "l" ||
                    !parseU64(f[1], step) || !parseU64(f[2], tid) ||
                    tid > UINT32_MAX || !parseU64(f[3], block))
                    return fail("bad lock record '" + rd.line + "'");
                log.locks.push_back({step, uint32_t(tid), block});
            }
            sawLocks = true;
        } else {
            return fail("unknown field '" + key + "'");
        }
    }

    if (!sawEnd)
        return fail("missing 'end' terminator");
    if (!sawOutcome || !sawSteps || !sawSwitches || !sawLocks)
        return fail("incomplete log (outcome/steps/switches/locks "
                    "required)");
    out = std::move(log);
    err.clear();
    return true;
}

bool
loadReplayLog(const std::string &path, ReplayLog &out, std::string &err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err = "cannot read " + path;
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseReplayLog(ss.str(), out, err);
}

bool
saveReplayLog(const std::string &path, const ReplayLog &log,
              std::string &err)
{
    std::ofstream f(path, std::ios::binary);
    if (!f) {
        err = "cannot write " + path;
        return false;
    }
    f << log.serialize();
    f.close();
    if (!f) {
        err = "write to " + path + " failed";
        return false;
    }
    err.clear();
    return true;
}

std::pair<uint64_t, uint64_t>
accessDigestOf(const FlightRecorder &rec)
{
    // Order-sensitive FNV-1a over the shared-access stream.  merged()
    // is seq-ordered, so the digest pins both values and their global
    // interleaving.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 0x100000001b3ull;
        }
    };
    uint64_t count = 0;
    for (const TraceEvent &ev : rec.merged()) {
        if (ev.kind != EventKind::SharedLoad &&
            ev.kind != EventKind::SharedStore)
            continue;
        ++count;
        mix(ev.kind == EventKind::SharedStore ? 1 : 0);
        mix(ev.tid);
        mix(ev.a);
        mix(ev.b);
    }
    return {count, count ? h : 0};
}

bool
buildReplayLog(const std::string &program,
               const std::string &scheduleToken, const vm::VmConfig &cfg,
               const FlightRecorder &rec, const vm::RunResult &result,
               ReplayLog &out, std::string &err)
{
    // Satellite invariant: a wrapped ring must never become a replay
    // log.  The retained stream is a suffix — the switches that shaped
    // the run's prefix are gone, and a replay from it would silently
    // tell a different story than the episode it claims to reproduce.
    if (uint64_t dropped = rec.droppedAll()) {
        err = strfmt(
            "recorder ring wrapped: %llu events dropped; a replay-grade "
            "recording must not drop (use RecorderMode::Grow or a "
            "larger capacity)",
            (unsigned long long)dropped);
        return false;
    }
    if (cfg.wpCheckpointInterval > 0) {
        err = "whole-program checkpoint runs cannot be replayed "
              "(rollback reseeds and perturbs the schedule)";
        return false;
    }

    ReplayLog log;
    log.program = program;
    log.scheduleToken = scheduleToken;
    log.engine = cfg.engine;
    log.policy = cfg.policy;
    log.depth = cfg.policy == vm::SchedPolicy::Pct
                    ? uint32_t(cfg.pctDepth)
                    : cfg.policy == vm::SchedPolicy::PreemptBound
                          ? uint32_t(cfg.preemptBound)
                          : 0;
    log.horizon = cfg.pctHorizon;
    log.quantum = cfg.quantum;
    log.seed = cfg.seed;
    log.appSeed = cfg.appSeed;
    log.maxSteps = cfg.maxSteps;
    log.hangTimeout = cfg.hangTimeout;
    log.maxRetries = cfg.maxRetries;
    log.backoffMax = cfg.backoffMax;
    log.chaosEveryN = cfg.chaosRollbackEveryN;
    log.chaosMaxRollbacks = cfg.chaosMaxRollbacks;
    log.delays = cfg.delays;

    uint64_t prevStep = 0;
    bool first = true;
    for (const TraceEvent &ev : rec.merged()) {
        if (ev.kind == EventKind::SchedSwitch) {
            if (!first && ev.step <= prevStep) {
                err = strfmt("corrupt recording: switch at step %llu "
                             "after step %llu",
                             (unsigned long long)ev.step,
                             (unsigned long long)prevStep);
                return false;
            }
            first = false;
            prevStep = ev.step;
            log.switches.push_back({ev.step, ev.tid});
        } else if (ev.kind == EventKind::LockAcquire) {
            log.locks.push_back({ev.step, ev.tid, ev.a});
        }
    }
    std::tie(log.accessCount, log.accessDigest) = accessDigestOf(rec);

    log.outcome = vm::outcomeName(result.outcome);
    log.failureTag = result.failureTag;
    log.exitCode = result.exitCode;
    log.finalClock = result.clock;
    log.finalSteps = result.stats.steps;
    log.schedTicks = result.stats.schedTicks;
    log.memDigest = result.memDigest;

    out = std::move(log);
    err.clear();
    return true;
}

} // namespace conair::obs::replay
