/**
 * @file
 * Replay-based ddmin minimisation of failing schedules.
 *
 * A recorded failure often carries hundreds of scheduler switches of
 * which only a handful matter (typically the one preemption inside the
 * buggy window).  minimizeReplayLog() shrinks the switch list with
 * delta debugging: candidate subsets are evaluated by *tolerant*
 * replay (inapplicable switches are skipped, a blocked thread falls
 * back to the lowest runnable id), and a candidate survives when the
 * recorded failure — outcome + failure tag, and optionally the
 * postmortem diagnosis verdict — is preserved.
 *
 * Because a tolerant replay of a reduced switch list is itself a fully
 * deterministic run, the minimised schedule is then *re-recorded*
 * (RecorderMode::Grow) into a fresh exact ReplayLog with its own
 * fingerprint, and that log is verified by one strict replay before it
 * is returned.  The output therefore carries the same faithfulness
 * contract as any recording — `bench_explore --replay` on a minimised
 * log is still an O(1), differentially-checked repro.
 */
#pragma once

#include <cstdint>
#include <string>

#include "obs/replay/replay_run.h"

namespace conair::obs::replay {

/** Knobs for minimizeReplayLog(). */
struct MinimizeOptions
{
    /** Engine used for candidate evaluation, re-recording, and the
     *  final strict verification. */
    vm::ExecEngine engine = vm::ExecEngine::Decoded;

    /** Additionally require the postmortem diagnosis verdict
     *  (obs::pm::RecoveryReport::primary) to survive minimisation.
     *  Costs a diagnosis-mode replay per candidate. */
    bool preserveVerdict = false;

    /** Safety valve on tolerant-replay probes (0 = unlimited). */
    uint64_t maxProbes = 0;
};

/** The minimisation result. */
struct MinimizeResult
{
    bool ok = false;
    std::string err; ///< one-line reason when !ok

    /** Re-recorded exact log of the minimised schedule (strictly
     *  verified); valid only when ok. */
    ReplayLog minimized;

    size_t originalSwitches = 0;
    size_t minimizedSwitches = 0;
    uint64_t probes = 0; ///< tolerant replays evaluated

    /** Diagnosis verdict preserved across minimisation ("" when
     *  verdict preservation was off or no verdict was diagnosed). */
    std::string verdict;
};

/**
 * ddmin over @p log's switch list.  @p m must be the module the log
 * was recorded from.  Fails (ok = false) when the baseline tolerant
 * replay of the full switch list does not reproduce the recorded
 * outcome + failure tag — a minimisation of a non-reproducing log
 * would shrink towards noise.
 */
MinimizeResult minimizeReplayLog(const ir::Module &m,
                                 const ReplayLog &log,
                                 const MinimizeOptions &opts = {});

} // namespace conair::obs::replay
