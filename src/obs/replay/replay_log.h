/**
 * @file
 * The deterministic replay log (src/obs/replay/): everything needed to
 * re-execute a recorded run with the identical interleaving and verify
 * that the re-execution *is* identical.
 *
 * A repro token ("pct:d2:s199") re-runs the *search* — policy + seed —
 * so any drift in scheduler code, engine tier, or ring truncation can
 * make a "repro" silently diverge from the episode it claims to
 * reproduce.  A ReplayLog re-runs the *schedule*: the recorded
 * scheduler-switch list (the VM's only interleaving choice point, see
 * vm::ReplaySchedule) plus a snapshot of every config knob execution
 * depends on.  Replay needs no search and is O(run length).
 *
 * Three layers of faithfulness evidence ride along:
 *  - the run fingerprint (final clock, steps, schedTicks, memDigest,
 *    outcome, failure tag, exit code) — the tick/digest oracle every
 *    replay is checked against (replay_run.h);
 *  - the sync-acquisition order (LockAcquire events as
 *    (step, tid, mutex-block) triples);
 *  - a rolling digest of the shared-access value stream when the
 *    recording ran in diagnosis mode (SharedLoad/SharedStore events).
 *
 * Logs serialise to a versioned line-based text format (documented in
 * docs/OBSERVABILITY.md) that round-trips byte-identically — the
 * record → replay → re-record identity is test-pinned.
 *
 * Building a log from a FlightRecorder that wrapped is a hard error
 * carrying the drop count: a switch list with a truncated prefix would
 * replay a lie.  Replay-grade recording uses RecorderMode::Grow.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "vm/config.h"
#include "vm/stats.h"

namespace conair::obs::replay {

/** Lowercase engine name ("decoded", "reference", "fused"). */
const char *engineName(vm::ExecEngine e);

/** Inverse of engineName; returns false on an unknown name. */
bool engineFromName(const std::string &name, vm::ExecEngine &out);

/** A recorded run, self-contained enough to re-execute exactly. */
struct ReplayLog
{
    //
    // Identity (informational; replay works without them).
    //

    std::string program;       ///< kernel name the log was recorded from
    std::string scheduleToken; ///< originating search token ("" = none)
    vm::ExecEngine engine = vm::ExecEngine::Decoded; ///< recorded under

    //
    // Config snapshot: every knob the execution depends on.  The
    // policy/depth knobs matter only for RNG-stream layout (per-thread
    // streams split from `seed`, PCT priority draws) — the scheduler
    // itself follows `switches`.
    //

    vm::SchedPolicy policy = vm::SchedPolicy::Random;
    uint32_t depth = 0; ///< pctDepth (Pct) / preemptBound (PreemptBound)
    uint64_t horizon = 2'000;
    uint64_t quantum = 50;
    uint64_t seed = 1;
    uint64_t appSeed = 99;
    uint64_t maxSteps = 50'000'000;
    uint64_t hangTimeout = 2'000'000;
    int64_t maxRetries = 1'000'000;
    uint64_t backoffMax = 64;
    uint64_t chaosEveryN = 0;
    uint64_t chaosMaxRollbacks = 10'000;
    std::vector<vm::DelayRule> delays;

    //
    // The recorded interleaving.
    //

    std::vector<vm::ReplaySchedule::Switch> switches;

    /** Sync-acquisition order: every LockAcquire, in record order. */
    struct LockAcq
    {
        uint64_t step;  ///< RunStats::steps at the acquisition
        uint32_t tid;   ///< acquiring thread
        uint64_t block; ///< mutex cell block id

        bool operator==(const LockAcq &) const = default;
    };
    std::vector<LockAcq> locks;

    /** Shared-access value stream (diagnosis-mode recordings only):
     *  event count and an order-sensitive FNV-1a digest over
     *  (kind, tid, packed address, value bits).  0/0 when the
     *  recording did not run in diagnosis mode. */
    uint64_t accessCount = 0;
    uint64_t accessDigest = 0;

    //
    // Run fingerprint — the faithfulness contract every replay is
    // differentially checked against (replay_run.h).
    //

    std::string outcome; ///< vm::outcomeName of the recorded outcome
    std::string failureTag;
    int64_t exitCode = 0;
    uint64_t finalClock = 0;
    uint64_t finalSteps = 0;
    uint64_t schedTicks = 0;
    uint64_t memDigest = 0;

    /** The switch list as the VM consumes it. */
    vm::ReplaySchedule schedule(bool tolerant = false) const;

    /** Reinstates the config snapshot into @p cfg.  Engine and the
     *  replay pointer are the caller's choice (cross-engine replay is
     *  the point), so they are left untouched. */
    void applyTo(vm::VmConfig &cfg) const;

    /** Versioned text form; parse() round-trips it byte-identically. */
    std::string serialize() const;

    bool operator==(const ReplayLog &) const = default;
};

/** Parses serialize() output.  Returns false with a one-line @p err
 *  (including the offending line number) on any malformed input. */
bool parseReplayLog(const std::string &text, ReplayLog &out,
                    std::string &err);

/** File convenience wrappers around serialize()/parseReplayLog(). */
bool loadReplayLog(const std::string &path, ReplayLog &out,
                   std::string &err);
bool saveReplayLog(const std::string &path, const ReplayLog &log,
                   std::string &err);

/**
 * Builds a replay-grade log from a recorded run.
 *
 * Hard-errors (returns false, one-line @p err) when:
 *  - the recorder dropped events to ring wraparound — the error names
 *    FlightRecorder::droppedAll(); a truncated switch prefix must
 *    never silently replay (record with RecorderMode::Grow);
 *  - the run used whole-program checkpointing (wpCheckpointInterval),
 *    whose reseed-and-perturb recovery is outside the replay model;
 *  - the recorded SchedSwitch steps are not strictly increasing
 *    (a corrupt or interleaved recording).
 *
 * @p cfg must be the exact configuration of the recorded run.
 */
bool buildReplayLog(const std::string &program,
                    const std::string &scheduleToken,
                    const vm::VmConfig &cfg, const FlightRecorder &rec,
                    const vm::RunResult &result, ReplayLog &out,
                    std::string &err);

/** (count, FNV-1a digest) of the SharedLoad/SharedStore stream in
 *  @p rec, in record order — the value-stream referee. */
std::pair<uint64_t, uint64_t> accessDigestOf(const FlightRecorder &rec);

} // namespace conair::obs::replay
