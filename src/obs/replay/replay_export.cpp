#include "obs/replay/replay_export.h"

#include <algorithm>

#include "support/str.h"

namespace conair::obs::replay {

std::string
replayTimeline(const ReplayLog &log)
{
    std::string o;
    o += strfmt("replay timeline: %s",
                log.program.empty() ? "(unnamed)" : log.program.c_str());
    if (!log.scheduleToken.empty())
        o += strfmt("  [token %s]", log.scheduleToken.c_str());
    o += strfmt("  engine=%s\n", engineName(log.engine));
    o += strfmt("config: policy=%s depth=%u quantum=%llu seed=%llu "
                "appseed=%llu\n",
                vm::schedPolicyName(log.policy), log.depth,
                (unsigned long long)log.quantum,
                (unsigned long long)log.seed,
                (unsigned long long)log.appSeed);
    o += strfmt("fingerprint: outcome=%s", log.outcome.c_str());
    if (!log.failureTag.empty())
        o += strfmt(" tag=%s", log.failureTag.c_str());
    o += strfmt(" exit=%lld steps=%llu clock=%llu schedTicks=%llu "
                "memDigest=%016llx\n",
                (long long)log.exitCode,
                (unsigned long long)log.finalSteps,
                (unsigned long long)log.finalClock,
                (unsigned long long)log.schedTicks,
                (unsigned long long)log.memDigest);
    o += strfmt("interleaving: %zu switches, %zu lock acquisitions",
                log.switches.size(), log.locks.size());
    if (log.accessCount > 0)
        o += strfmt(", %llu shared accesses (digest %016llx)",
                    (unsigned long long)log.accessCount,
                    (unsigned long long)log.accessDigest);
    o += "\n";

    // Merge switches and lock acquisitions chronologically by step.
    // A switch at step s is the scheduling decision *before* step s
    // executes, so it sorts ahead of a lock acquired at the same step.
    size_t si = 0, li = 0;
    while (si < log.switches.size() || li < log.locks.size()) {
        const bool takeSwitch =
            si < log.switches.size() &&
            (li >= log.locks.size() ||
             log.switches[si].step <= log.locks[li].step);
        if (takeSwitch) {
            const auto &s = log.switches[si++];
            o += strfmt("  step %10llu  switch -> T%u\n",
                        (unsigned long long)s.step, s.tid);
        } else {
            const auto &l = log.locks[li++];
            o += strfmt("  step %10llu  T%u acquires mutex block %llu\n",
                        (unsigned long long)l.step, l.tid,
                        (unsigned long long)l.block);
        }
    }
    o += strfmt("  step %10llu  end: %s",
                (unsigned long long)log.finalSteps, log.outcome.c_str());
    if (!log.failureTag.empty())
        o += strfmt(" (%s)", log.failureTag.c_str());
    o += "\n";
    return o;
}

} // namespace conair::obs::replay
