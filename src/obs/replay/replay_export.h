/**
 * @file
 * Replay-sourced "time-travel" timeline: a human-readable rendering of
 * a ReplayLog's interleaving, usable without re-running anything.
 *
 * Where obs::recoveryTimeline() renders what a FlightRecorder happened
 * to retain (post-wraparound), replayTimeline() renders the replay
 * log itself — the exact, complete switch + lock-order history that
 * strict replay will follow, step-addressed so any position in the run
 * can be named ("the bug needs the switch to T2 at step 417").  The
 * output is deterministic byte-for-byte for a given log.
 */
#pragma once

#include <string>

#include "obs/replay/replay_log.h"

namespace conair::obs::replay {

/** One line per scheduler switch and lock acquisition, chronological
 *  by step, framed by the config snapshot and run fingerprint. */
std::string replayTimeline(const ReplayLog &log);

} // namespace conair::obs::replay
