/**
 * @file
 * The replay runner: re-executes a ReplayLog through any VM engine and
 * differentially checks the result against the log's fingerprint.
 *
 * This is the "ReplayScheduler" half of record-and-replay: the VM's
 * scheduler consumes the recorded switch list (vm::ReplaySchedule via
 * VmConfig::replay) with no search, no policy, and no scheduler RNG —
 * the recorded thread runs until the next recorded switch step.  Every
 * replay is refereed: the final clock, step count, scheduling ticks,
 * memory digest, outcome, failure tag, and exit code must all equal
 * the recording's, or the run is reported unfaithful with the first
 * diverging field named.  Because all three engines are tick-identical
 * by construction, a log recorded under one engine replays under any
 * other (record under Reference, replay under Fused) — the cross-engine
 * differential oracle extended to recorded schedules.
 */
#pragma once

#include <string>

#include "obs/replay/replay_log.h"

namespace conair::ir {
class Module;
}

namespace conair::obs::prof {
class PhaseProfiler;
}

namespace conair::obs::replay {

/** One replayed run plus its faithfulness verdict. */
struct ReplayRun
{
    vm::RunResult result;

    /** The fingerprint matched the recording exactly. */
    bool faithful = false;

    /** First diverging fingerprint field ("clock 120 vs 130 recorded",
     *  a replay-divergence message, ...); empty when faithful. */
    std::string mismatch;
};

/** Optional instrumentation for a replay run. */
struct ReplayInstruments
{
    /** Re-record the replay (minimisation and the byte-identity test
     *  use this; RecorderMode::Grow recommended). */
    FlightRecorder *recorder = nullptr;

    /** Diagnosis recording mode on the replay: shared-access events
     *  are recorded and — when the log carries an access digest — the
     *  replayed value stream is checked against it. */
    bool recordSharedAccesses = false;

    /** Check the replayed LockAcquire order against the log's (needs
     *  @ref recorder). */
    bool checkLockOrder = false;

    /** Phase-profile the replay (VmConfig::profiler passivity
     *  contract: attaching it cannot change the fingerprint, so a
     *  profiled replay is still held to byte-exact faithfulness). */
    prof::PhaseProfiler *profiler = nullptr;
};

/**
 * Replays @p log against @p m — the same build the log was recorded
 * from — under @p engine, in strict (non-tolerant) mode, and verifies
 * the fingerprint.  @p m is executed as-is: passing a different module
 * than the recorded one is a contract violation and will surface as a
 * divergence.
 */
ReplayRun replayLog(const ir::Module &m, const ReplayLog &log,
                    vm::ExecEngine engine,
                    const ReplayInstruments *ins = nullptr);

/**
 * Replays @p log with a perturbed switch list (tolerant mode): the VM
 * skips inapplicable switches and falls back to the lowest runnable id
 * when the current thread blocks.  This is the ddmin candidate
 * evaluator — no fingerprint check, since a perturbed schedule
 * legitimately executes differently.
 */
vm::RunResult replayTolerant(
    const ir::Module &m, const ReplayLog &log,
    const std::vector<vm::ReplaySchedule::Switch> &switches,
    vm::ExecEngine engine, const ReplayInstruments *ins = nullptr);

} // namespace conair::obs::replay
