/**
 * @file
 * Exporters over FlightRecorder contents:
 *
 *  - chromeTraceJson(): Chrome `trace_event` JSON, loadable in
 *    Perfetto (ui.perfetto.dev) or chrome://tracing.  One process per
 *    recorded VM run, one track per VM thread; recovery episodes and
 *    lock waits render as duration ("X") events, everything else as
 *    instants.  Per-kind totals (which survive ring wraparound) go in
 *    the top-level "otherData" object so aggregate counts stay
 *    comparable against RunStats even when the ring dropped events.
 *
 *  - recoveryTimeline(): a human-readable dump of the recovery story
 *    (checkpoints, rollbacks, compensation, back-off, recovery) for
 *    terminal inspection of a failing repro token.
 *
 * Both are deterministic byte-for-byte for a given recorder state; the
 * golden trace test pins chromeTraceJson() output exactly.
 */
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace conair::obs {

/** One recorded VM run to export as a trace process. */
struct TraceProcess
{
    const FlightRecorder *recorder = nullptr;
    std::string name; ///< process_name metadata, e.g. "MySQL1 hardened"
    uint32_t pid = 1;
};

/** Virtual-clock tick duration in microseconds.  The VM's virtual
 *  clock advances kNanosPerStep = 100 ns per tick, i.e. 0.1 µs. */
inline constexpr double kDefaultMicrosPerTick = 0.1;

/** Renders @p processes as a Chrome trace_event JSON document. */
std::string chromeTraceJson(const std::vector<TraceProcess> &processes,
                            double microsPerTick = kDefaultMicrosPerTick);

/** Convenience wrapper for a single run. */
std::string chromeTraceJson(const FlightRecorder &rec,
                            const std::string &processName,
                            double microsPerTick = kDefaultMicrosPerTick);

/** Human-readable recovery timeline (one line per recovery-relevant
 *  event, chronological, annotated with thread / clock / site tag). */
std::string recoveryTimeline(const FlightRecorder &rec,
                             double microsPerTick = kDefaultMicrosPerTick);

} // namespace conair::obs
