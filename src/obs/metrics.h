/**
 * @file
 * A small metrics registry: named monotonic counters plus fixed-bucket
 * histograms, built for deterministic aggregation.  The VM populates
 * one per run (VmConfig::metrics); the campaign engine merges
 * per-schedule registries per (kernel, policy) in matrix order, so the
 * aggregated numbers are independent of worker count — pinned by
 * tests/explore/campaign_test.cpp.
 *
 * The stock instruments (see docs/OBSERVABILITY.md for the schema):
 *   counters    checkpoints, rollbacks, recoveries, backoffs,
 *               compensation_frees, compensation_unlocks,
 *               chaos_rollbacks, retries_by_site/<tag>
 *   histograms  recovery_latency_us        (latencyBucketsUs)
 *               recovery_retries           (retryBuckets)
 *               ckpt_to_failure_ticks      (tickDistanceBuckets)
 *
 * Map-backed on purpose: names serialize in sorted order, keeping the
 * JSON artifact byte-stable for the golden tests.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace conair {
class JsonWriter;
}

namespace conair::obs {

/** A fixed-bucket histogram.  `bounds` are inclusive upper edges of
 *  the finite buckets; one overflow bucket catches the rest. */
struct Histogram
{
    std::vector<uint64_t> bounds; ///< ascending upper edges
    std::vector<uint64_t> counts; ///< bounds.size() + 1 buckets
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;

    Histogram() = default;
    explicit Histogram(std::vector<uint64_t> upperBounds);

    void observe(uint64_t v);

    /** Adds @p other in; bucket layouts must match. */
    void merge(const Histogram &other);

    double mean() const { return count ? double(sum) / double(count) : 0.0; }

    /**
     * Estimated q-quantile (q in [0, 1]) by linear interpolation inside
     * the bucket holding the q*count-th observation — the classic
     * Prometheus histogram_quantile estimator.  Interpolates from the
     * previous bound to the bucket's upper bound (the first finite
     * bucket starts at 0); an estimate landing in the overflow bucket
     * is clamped to the observed max.  0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    bool operator==(const Histogram &) const = default;
};

class MetricsRegistry
{
  public:
    /** Adds @p delta to counter @p name (created at zero on first use). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Counter value (0 when the counter was never touched). */
    uint64_t counter(const std::string &name) const;

    /** Records @p v into histogram @p name, creating it with
     *  @p bounds on first use.  Later calls ignore @p bounds. */
    void observe(const std::string &name, uint64_t v,
                 const std::vector<uint64_t> &bounds);

    /** The histogram, or nullptr if never observed. */
    const Histogram *histogram(const std::string &name) const;

    /** Folds @p other in: counters add, histograms merge. */
    void merge(const MetricsRegistry &other);

    bool empty() const { return counters_.empty() && hists_.empty(); }
    void clear();

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    /** Serializes as {"counters": {...}, "histograms": {...}} into an
     *  open writer position (caller owns the surrounding document). */
    void writeJson(JsonWriter &w) const;

    /** A standalone pretty-printed JSON document. */
    std::string toJson(int indent = 2) const;

    /**
     * Prometheus text exposition format (version 0.0.4): every family
     * carries `# HELP` (backslash/newline escaped) and `# TYPE`
     * lines; counters as plain samples, histograms as cumulative
     * `_bucket{le="..."}` series plus `_sum` / `_count`, followed by
     * `_p50` / `_p95` / `_p99` estimated-quantile gauge families.
     * Metric names are sanitised to [a-zA-Z0-9_:] (so
     * `retries_by_site/<tag>` becomes a `site="<tag>"` label on
     * `retries_by_site`); label values escape `\`, `"`, and newline.
     * Byte-pinned by tests/obs/metrics_prom_golden_test.cpp.
     */
    std::string toPrometheusText() const;

    bool operator==(const MetricsRegistry &) const = default;

    // Stock bucket ladders for the VM's instruments.
    static const std::vector<uint64_t> &latencyBucketsUs();
    static const std::vector<uint64_t> &retryBuckets();
    static const std::vector<uint64_t> &tickDistanceBuckets();

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> hists_;
};

} // namespace conair::obs
