/**
 * @file
 * A minimal embedded HTTP/1.1 server for live telemetry exposition —
 * no external dependencies, POSIX sockets only.  Built for exactly
 * one job: letting Prometheus scrapers and curl hit `GET /metrics`,
 * `GET /status`, and `GET /coverage` on a running campaign
 * (docs/OBSERVABILITY.md, "Live telemetry endpoints").
 *
 * Shape: one accept thread polls the listening socket (so stop() can
 * interrupt it without tricks), pushing accepted connections onto a
 * small fixed pool of handler threads.  Requests are GET-only,
 * size-capped, and answered with `Connection: close` — one request
 * per connection, nothing persistent, no interference with the
 * campaign workers beyond the handler threads themselves.
 *
 * The server binds 127.0.0.1 only: telemetry is host-local by design
 * (fronting it with real infrastructure is the conaird daemon's job,
 * see ROADMAP.md).  Port 0 asks the kernel for an ephemeral port;
 * port() reports what was bound.
 *
 * Contract details the tests pin (tests/obs/http_server_test.cpp):
 *  - >= 64 concurrent scrapes all answer 200 with consistent bodies;
 *  - malformed or oversized (> 8 KiB) requests answer 400, non-GET
 *    methods 405, unknown paths 404 — never a crash or a hang;
 *  - stop() joins every thread cleanly, even mid-scrape.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace conair::obs::serve {

/** What a route handler returns. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse()>;

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Registers @p path (exact match, query string ignored).  Call
     *  before start(). */
    void route(const std::string &path, Handler h);

    /** Binds 127.0.0.1:@p port (0 = ephemeral) and spawns the accept
     *  thread + handler pool.  False (with @p err) on failure. */
    bool start(uint16_t port, std::string &err);

    /** The bound port (after a successful start()). */
    uint16_t port() const { return port_; }

    bool running() const
    {
        return started_ && !stopping_.load(std::memory_order_acquire);
    }

    /** Stops accepting, drains the connection queue, joins every
     *  thread.  Idempotent; also run by the destructor. */
    void stop();

    /** Requests answered with 200. */
    uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** Requests answered with 400 (malformed / oversized). */
    uint64_t badRequests() const
    {
        return bad_.load(std::memory_order_relaxed);
    }

    /** Requests answered with 404 (unknown path). */
    uint64_t notFound() const
    {
        return notFound_.load(std::memory_order_relaxed);
    }

    /** Requests answered with 405 (non-GET method). */
    uint64_t methodNotAllowed() const
    {
        return methodNotAllowed_.load(std::memory_order_relaxed);
    }

    /** The four request counters in Prometheus text exposition
     *  (conair_http_* counters) — appended to /metrics bodies so the
     *  telemetry plane monitors itself. */
    std::string prometheusCounters() const;

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    std::map<std::string, Handler> routes_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    bool started_ = false;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::vector<std::thread> handlers_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<int> queue_; ///< accepted fds awaiting a handler

    std::atomic<uint64_t> served_{0};
    std::atomic<uint64_t> bad_{0};
    std::atomic<uint64_t> notFound_{0};
    std::atomic<uint64_t> methodNotAllowed_{0};
};

/**
 * A tiny blocking HTTP GET against 127.0.0.1:@p port — the client
 * half the server tests and the scrape-guard bench share.  Returns
 * false (with @p err) on connect/transport failure; HTTP error
 * statuses are returned in @p status, not treated as failure.
 *
 * @p deadlineMs bounds the WHOLE call (connect + send + receive): a
 * server that accepts the connection but never answers — or trickles
 * bytes forever — fails the call with a deadline error instead of
 * holding the client indefinitely.  Individual socket operations stay
 * capped at 2 s, clamped down to whatever remains of the deadline.
 */
bool httpGet(uint16_t port, const std::string &path, int &status,
             std::string &body, std::string &err,
             int deadlineMs = 10'000);

} // namespace conair::obs::serve
