#include "obs/serve/http_server.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/str.h"

namespace conair::obs::serve {

namespace {

/** Request size cap: a scrape request line plus a few headers fits in
 *  well under 8 KiB; anything bigger is answered 400 and dropped. */
constexpr size_t kMaxRequestBytes = 8192;

/** Handler pool size: enough to overlap slow readers, small enough
 *  to stay invisible next to the campaign worker pool. */
constexpr unsigned kHandlerThreads = 4;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Error";
    }
}

void
setIoTimeouts(int fd)
{
    // Bound every read/write so one stalled or malicious client can
    // only ever hold a handler thread briefly.
    timeval tv{};
    tv.tv_sec = 2;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return; // timed out or peer gone; nothing to salvage
        off += size_t(n);
    }
}

void
sendResponse(int fd, int status, const std::string &contentType,
             const std::string &body, bool allowHeader = false)
{
    std::string head = strfmt(
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n",
        status, statusText(status), contentType.c_str(), body.size());
    if (allowHeader)
        head += "Allow: GET\r\n";
    head += "\r\n";
    sendAll(fd, head + body);
}

} // namespace

void
HttpServer::route(const std::string &path, Handler h)
{
    routes_[path] = std::move(h);
}

bool
HttpServer::start(uint16_t port, std::string &err)
{
    if (started_) {
        err = "server already started";
        return false;
    }

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = strfmt("bind 127.0.0.1:%u: %s", unsigned(port),
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 128) != 0) {
        err = strfmt("listen: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0) {
        err = strfmt("getsockname: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }

    listenFd_ = fd;
    port_ = ntohs(addr.sin_port);
    stopping_.store(false, std::memory_order_release);
    started_ = true;

    acceptThread_ = std::thread([this] { acceptLoop(); });
    handlers_.reserve(kHandlerThreads);
    for (unsigned i = 0; i < kHandlerThreads; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_release);
    queueCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    // Drain connections accepted but never handled.
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        for (int fd : queue_)
            ::close(fd);
        queue_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    started_ = false;
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        // The poll timeout is the stop() latency bound.
        int r = ::poll(&pfd, 1, 100);
        if (r <= 0)
            continue;
        int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        setIoTimeouts(conn);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            queue_.push_back(conn);
        }
        queueCv_.notify_one();
    }
}

void
HttpServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (queue_.empty())
                return; // stopping and drained
            fd = queue_.front();
            queue_.pop_front();
        }
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Read until the end of the header block, the size cap, or a
    // transport error/timeout.
    std::string req;
    char buf[2048];
    size_t headerEnd = std::string::npos;
    while (req.size() <= kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, size_t(n));
        headerEnd = req.find("\r\n\r\n");
        if (headerEnd == std::string::npos)
            headerEnd = req.find("\n\n");
        if (headerEnd != std::string::npos)
            break;
    }
    if (headerEnd == std::string::npos || req.size() > kMaxRequestBytes) {
        bad_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, 400, "text/plain; charset=utf-8",
                     "bad request\n");
        return;
    }

    // Request line: METHOD SP TARGET SP HTTP/x.y
    size_t eol = req.find_first_of("\r\n");
    std::string line = req.substr(0, eol);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
        bad_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, 400, "text/plain; charset=utf-8",
                     "bad request\n");
        return;
    }
    std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query = target.find('?');
    if (query != std::string::npos)
        target.resize(query);

    if (method != "GET") {
        methodNotAllowed_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, 405, "text/plain; charset=utf-8",
                     "method not allowed\n", /*allowHeader=*/true);
        return;
    }
    auto it = routes_.find(target);
    if (it == routes_.end()) {
        notFound_.fetch_add(1, std::memory_order_relaxed);
        sendResponse(fd, 404, "text/plain; charset=utf-8",
                     "not found\n");
        return;
    }
    HttpResponse resp = it->second();
    sendResponse(fd, resp.status, resp.contentType, resp.body);
    if (resp.status == 200)
        served_.fetch_add(1, std::memory_order_relaxed);
}

std::string
HttpServer::prometheusCounters() const
{
    std::string out;
    auto counter = [&out](const char *name, const char *help,
                          uint64_t v) {
        out += strfmt("# HELP %s %s\n# TYPE %s counter\n%s %llu\n",
                      name, help, name, name, (unsigned long long)v);
    };
    counter("conair_http_requests_served",
            "HTTP requests answered with 200.", requestsServed());
    counter("conair_http_bad_requests",
            "HTTP requests answered with 400 (malformed/oversized).",
            badRequests());
    counter("conair_http_not_found",
            "HTTP requests answered with 404 (unknown path).",
            notFound());
    counter("conair_http_method_not_allowed",
            "HTTP requests answered with 405 (non-GET method).",
            methodNotAllowed());
    return out;
}

bool
httpGet(uint16_t port, const std::string &path, int &status,
        std::string &body, std::string &err, int deadlineMs)
{
    // The overall deadline bounds the whole exchange; each socket
    // operation additionally stays under the 2 s per-op cap, clamped
    // to whatever remains.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadlineMs);
    auto remainingMs = [&deadline]() -> long long {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   deadline - Clock::now())
            .count();
    };
    auto armTimeouts = [&](int sock) -> bool {
        long long rem = remainingMs();
        if (rem <= 0)
            return false;
        long long ms = std::min<long long>(rem, 2000);
        timeval tv{};
        tv.tv_sec = time_t(ms / 1000);
        tv.tv_usec = suseconds_t((ms % 1000) * 1000);
        setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        setsockopt(sock, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        return true;
    };

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    if (!armTimeouts(fd)) {
        err = strfmt("deadline of %d ms exceeded", deadlineMs);
        ::close(fd);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = strfmt("connect 127.0.0.1:%u: %s", unsigned(port),
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    std::string req = "GET " + path +
                      " HTTP/1.1\r\n"
                      "Host: 127.0.0.1\r\n"
                      "Connection: close\r\n\r\n";
    sendAll(fd, req);

    std::string resp;
    char buf[4096];
    bool timedOut = false;
    for (;;) {
        if (!armTimeouts(fd)) {
            timedOut = true; // overall deadline spent
            break;
        }
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            timedOut = true; // a single read stalled past its cap
            break;
        }
        if (n <= 0)
            break;
        resp.append(buf, size_t(n));
    }
    ::close(fd);

    if (timedOut && resp.empty()) {
        err = strfmt("no response within the %d ms deadline",
                     deadlineMs);
        return false;
    }
    if (resp.compare(0, 5, "HTTP/") != 0) {
        err = "malformed response";
        return false;
    }
    size_t sp = resp.find(' ');
    if (sp == std::string::npos) {
        err = "malformed status line";
        return false;
    }
    status = std::atoi(resp.c_str() + sp + 1);
    size_t headerEnd = resp.find("\r\n\r\n");
    body = headerEnd == std::string::npos
               ? std::string()
               : resp.substr(headerEnd + 4);
    err.clear();
    return true;
}

} // namespace conair::obs::serve
