#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "support/diag.h"
#include "support/json.h"
#include "support/str.h"

namespace conair::obs {

Histogram::Histogram(std::vector<uint64_t> upperBounds)
    : bounds(std::move(upperBounds)), counts(bounds.size() + 1, 0)
{
}

void
Histogram::observe(uint64_t v)
{
    size_t i = std::lower_bound(bounds.begin(), bounds.end(), v) -
               bounds.begin();
    ++counts[i];
    ++count;
    sum += v;
    max = std::max(max, v);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    if (bounds != other.bounds)
        fatal("Histogram::merge: bucket layouts differ");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
}

double
Histogram::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * double(count);
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        if (double(seen) + double(counts[i]) >= rank) {
            if (i == bounds.size())
                return double(max); // overflow bucket: best bound known
            double lo = i == 0 ? 0.0 : double(bounds[i - 1]);
            double hi = double(bounds[i]);
            double frac =
                std::max(0.0, (rank - double(seen)) / double(counts[i]));
            return std::min(lo + (hi - lo) * frac, double(max));
        }
        seen += counts[i];
    }
    return double(max);
}

void
MetricsRegistry::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::observe(const std::string &name, uint64_t v,
                         const std::vector<uint64_t> &bounds)
{
    auto it = hists_.find(name);
    if (it == hists_.end()) {
        it = hists_.emplace(name, Histogram(bounds)).first;
    } else {
        // First-use-wins contract: the ladder a histogram was created
        // with is the ladder it keeps.  Passing different bounds for
        // the same name is a caller bug — merge() would later fail on
        // the mismatch — so it is fatal in debug builds and ignored
        // (the original ladder is kept) in release builds.
        assert(it->second.bounds == bounds &&
               "MetricsRegistry::observe: bucket bounds differ from "
               "the histogram's first use");
    }
    it->second.observe(v);
}

const Histogram *
MetricsRegistry::histogram(const std::string &name) const
{
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, v] : other.counters_)
        counters_[name] += v;
    for (const auto &[name, h] : other.hists_) {
        auto it = hists_.find(name);
        if (it == hists_.end())
            hists_.emplace(name, h);
        else
            it->second.merge(h);
    }
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    hists_.clear();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters_)
        w.key(name).value(v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : hists_) {
        w.key(name).beginObject();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("max").value(h.max);
        w.key("mean").value(h.mean(), "%.3f");
        w.key("p50").value(h.p50(), "%.3f");
        w.key("p95").value(h.p95(), "%.3f");
        w.key("p99").value(h.p99(), "%.3f");
        w.key("bounds").beginArray();
        for (uint64_t bnd : h.bounds)
            w.value(bnd);
        w.endArray();
        w.key("buckets").beginArray();
        for (uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::toJson(int indent) const
{
    JsonWriter w(indent);
    writeJson(w);
    return w.str();
}

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out = name;
    for (char &c : out)
        if (!std::isalnum((unsigned char)c) && c != '_' && c != ':')
            c = '_';
    if (out.empty() || std::isdigit((unsigned char)out[0]))
        out.insert(out.begin(), '_');
    return out;
}

/** Label values escape backslash, double quote, and newline. */
std::string
promLabelValue(const std::string &v)
{
    std::string out;
    for (char c : v) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** HELP text escapes backslash and newline (exposition format 0.0.4
 *  leaves double quotes alone outside label values). */
std::string
promHelpText(const std::string &v)
{
    std::string out;
    for (char c : v) {
        if (c == '\\') {
            out += "\\\\";
            continue;
        }
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** Stable HELP strings for the stock instruments; unknown families
 *  get a generic line so every exposed family carries one. */
std::string
helpFor(const std::string &family)
{
    static const std::map<std::string, std::string> kHelp = {
        {"checkpoints", "Checkpoints executed by the hardened run."},
        {"rollbacks", "ConAir rollbacks (idempotent re-executions)."},
        {"recoveries", "Completed recovery episodes."},
        {"backoffs", "Retry back-off sleeps during recovery."},
        {"compensation_frees",
         "Heap blocks compensation-freed on rollback."},
        {"compensation_unlocks",
         "Mutexes compensation-unlocked on rollback."},
        {"chaos_rollbacks", "Fault-injected (chaos) rollbacks."},
        {"retries_by_site",
         "Recovery retries attributed to a failure site."},
        {"recovery_latency_us",
         "Recovery episode latency in virtual microseconds."},
        {"recovery_retries", "Retries needed per recovery episode."},
        {"ckpt_to_failure_ticks",
         "Checkpoint-to-failure distance in scheduling ticks."},
    };
    auto it = kHelp.find(family);
    if (it != kHelp.end())
        return it->second;
    return "ConAir metric " + family + ".";
}

} // namespace

std::string
MetricsRegistry::toPrometheusText() const
{
    std::string out;
    // Counters.  A '/' splits a family from its site label
    // (retries_by_site/<tag> -> retries_by_site{site="<tag>"}); the
    // map is sorted, so a family's members are adjacent and its
    // `# TYPE` header is emitted once.
    std::string lastFamily;
    for (const auto &[name, v] : counters_) {
        size_t slash = name.find('/');
        std::string family = promName(name.substr(0, slash));
        if (family != lastFamily) {
            out += strfmt("# HELP %s %s\n", family.c_str(),
                          promHelpText(helpFor(family)).c_str());
            out += strfmt("# TYPE %s counter\n", family.c_str());
            lastFamily = family;
        }
        if (slash == std::string::npos)
            out += strfmt("%s %llu\n", family.c_str(),
                          (unsigned long long)v);
        else
            out += strfmt("%s{site=\"%s\"} %llu\n", family.c_str(),
                          promLabelValue(name.substr(slash + 1)).c_str(),
                          (unsigned long long)v);
    }
    // Histograms: cumulative buckets + sum + count (the 0.0.4
    // histogram series), then the estimated quantiles as companion
    // gauge families for consumers that can't run
    // histogram_quantile() themselves.
    for (const auto &[name, h] : hists_) {
        std::string family = promName(name);
        out += strfmt("# HELP %s %s\n", family.c_str(),
                      promHelpText(helpFor(family)).c_str());
        out += strfmt("# TYPE %s histogram\n", family.c_str());
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            cum += h.counts[i];
            out += strfmt("%s_bucket{le=\"%llu\"} %llu\n",
                          family.c_str(),
                          (unsigned long long)h.bounds[i],
                          (unsigned long long)cum);
        }
        out += strfmt("%s_bucket{le=\"+Inf\"} %llu\n", family.c_str(),
                      (unsigned long long)h.count);
        out += strfmt("%s_sum %llu\n", family.c_str(),
                      (unsigned long long)h.sum);
        out += strfmt("%s_count %llu\n", family.c_str(),
                      (unsigned long long)h.count);
        const struct
        {
            const char *suffix;
            double q;
        } quantiles[] = {{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
        for (const auto &qd : quantiles) {
            out += strfmt("# HELP %s_%s Estimated %g-quantile of "
                          "%s.\n",
                          family.c_str(), qd.suffix, qd.q,
                          family.c_str());
            out += strfmt("# TYPE %s_%s gauge\n", family.c_str(),
                          qd.suffix);
            out += strfmt("%s_%s %.3f\n", family.c_str(), qd.suffix,
                          h.quantile(qd.q));
        }
    }
    return out;
}

const std::vector<uint64_t> &
MetricsRegistry::latencyBucketsUs()
{
    // Recovery latency in virtual microseconds: rollback-to-recovery
    // episodes span a handful of re-executed instructions (0.1 µs
    // each) up to long retry/back-off loops.
    static const std::vector<uint64_t> b = {1,   2,   5,    10,   20,
                                            50,  100, 200,  500,  1000,
                                            2000, 5000, 10000, 100000};
    return b;
}

const std::vector<uint64_t> &
MetricsRegistry::retryBuckets()
{
    static const std::vector<uint64_t> b = {1, 2, 3, 4, 6, 8, 12, 16, 32};
    return b;
}

const std::vector<uint64_t> &
MetricsRegistry::tickDistanceBuckets()
{
    // Checkpoint-to-failure distance in scheduling ticks: ConAir's
    // whole bet is that this stays tiny (idempotent region), so the
    // ladder is dense near zero.
    static const std::vector<uint64_t> b = {0,  1,  2,   4,   8,   16,
                                            32, 64, 128, 256, 1024, 8192};
    return b;
}

} // namespace conair::obs
