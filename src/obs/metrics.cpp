#include "obs/metrics.h"

#include <algorithm>

#include "support/diag.h"
#include "support/json.h"

namespace conair::obs {

Histogram::Histogram(std::vector<uint64_t> upperBounds)
    : bounds(std::move(upperBounds)), counts(bounds.size() + 1, 0)
{
}

void
Histogram::observe(uint64_t v)
{
    size_t i = std::lower_bound(bounds.begin(), bounds.end(), v) -
               bounds.begin();
    ++counts[i];
    ++count;
    sum += v;
    max = std::max(max, v);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    if (bounds != other.bounds)
        fatal("Histogram::merge: bucket layouts differ");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
}

void
MetricsRegistry::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::observe(const std::string &name, uint64_t v,
                         const std::vector<uint64_t> &bounds)
{
    auto it = hists_.find(name);
    if (it == hists_.end())
        it = hists_.emplace(name, Histogram(bounds)).first;
    it->second.observe(v);
}

const Histogram *
MetricsRegistry::histogram(const std::string &name) const
{
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, v] : other.counters_)
        counters_[name] += v;
    for (const auto &[name, h] : other.hists_) {
        auto it = hists_.find(name);
        if (it == hists_.end())
            hists_.emplace(name, h);
        else
            it->second.merge(h);
    }
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    hists_.clear();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters_)
        w.key(name).value(v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : hists_) {
        w.key(name).beginObject();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("max").value(h.max);
        w.key("mean").value(h.mean(), "%.3f");
        w.key("bounds").beginArray();
        for (uint64_t bnd : h.bounds)
            w.value(bnd);
        w.endArray();
        w.key("buckets").beginArray();
        for (uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::toJson(int indent) const
{
    JsonWriter w(indent);
    writeJson(w);
    return w.str();
}

const std::vector<uint64_t> &
MetricsRegistry::latencyBucketsUs()
{
    // Recovery latency in virtual microseconds: rollback-to-recovery
    // episodes span a handful of re-executed instructions (0.1 µs
    // each) up to long retry/back-off loops.
    static const std::vector<uint64_t> b = {1,   2,   5,    10,   20,
                                            50,  100, 200,  500,  1000,
                                            2000, 5000, 10000, 100000};
    return b;
}

const std::vector<uint64_t> &
MetricsRegistry::retryBuckets()
{
    static const std::vector<uint64_t> b = {1, 2, 3, 4, 6, 8, 12, 16, 32};
    return b;
}

const std::vector<uint64_t> &
MetricsRegistry::tickDistanceBuckets()
{
    // Checkpoint-to-failure distance in scheduling ticks: ConAir's
    // whole bet is that this stays tiny (idempotent region), so the
    // ladder is dense near zero.
    static const std::vector<uint64_t> b = {0,  1,  2,   4,   8,   16,
                                            32, 64, 128, 256, 1024, 8192};
    return b;
}

} // namespace conair::obs
