/**
 * @file
 * The deterministic recovery-cost profiler (docs/OBSERVABILITY.md,
 * "Profiling").
 *
 * A PhaseProfiler attaches to a run through VmConfig::profiler under
 * the same passivity contract as the flight recorder: nullptr (the
 * default) disables it, every hook site is one branch on the pointer,
 * and an instrumented run is tick- and memDigest-identical to a bare
 * one on all three engines (pinned by tests/obs/vm_profile_test.cpp).
 * All mutable profiler state lives inside this object — the VM never
 * grows per-thread fields for it — so passivity holds by construction.
 *
 * Two things are attributed:
 *
 *  1. *Phases.*  Every retired step is classified by the instruction
 *     about to execute (classifyPhase): plain dispatch, memory
 *     traffic, synchronisation builtins, checkpoint saves, rollback
 *     attempts, retry back-off.  Steps retired while a thread is
 *     inside an open recovery episode are re-execution work and land
 *     in Phase::Reexec instead (except the recovery machinery's own
 *     steps, which keep their class).  Two phases count *waiting*
 *     virtual ticks rather than steps: LockWait (block-to-grant time
 *     of contended locks) and Backoff (virtual sleep ticks).
 *
 *  2. *Recovery tax.*  Per recovery episode — first rollback at a
 *     failure site to the CaRecovered on its success path — the
 *     profiler rolls up the checkpoint distance (scheduling ticks from
 *     the checkpoint to the failure), the steps re-executed to reach
 *     the resume point, the work discarded by each rollback ("wasted"
 *     steps since the last checkpoint), and the back-off ticks slept,
 *     joined with the episode's failure-site tag.
 *
 * The per-run data folds into a ProfileAgg; the campaign engine merges
 * those per (kernel, policy) in matrix order, so aggregated profiles
 * are independent of worker count (tests/explore/campaign_test.cpp).
 */
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/builtins.h"
#include "ir/instruction.h"

namespace conair {
class JsonWriter;
}

namespace conair::obs::prof {

/** Where a retired step (or waited tick) is attributed. */
enum class Phase : uint8_t {
    Dispatch,       ///< plain compute/control dispatch
    Memory,         ///< loads, stores, malloc/free
    Sync,           ///< thread/mutex/yield/sleep builtins
    LockWait,       ///< ticks blocked on a contended mutex (waits)
    CheckpointSave, ///< CaCheckpoint[Locals] steps + locals-save cost
    Rollback,       ///< CaTryRollback steps (the longjmp machinery)
    Reexec,         ///< re-execution inside an open recovery episode
    Backoff,        ///< virtual ticks slept in retry back-off (waits)
};

constexpr size_t kPhaseCount = 8;

/** Stable lowercase phase name ("dispatch", "lock_wait", ...). */
const char *phaseName(Phase p);

/** Classifies the instruction about to execute.  Engine-independent:
 *  both the reference walker and the decoded/fused tiers carry the
 *  same (opcode, builtin) pair.  CaRecovered steps are refunded by the
 *  VM and must not be attributed at all — callers skip them. */
Phase classifyPhase(ir::Opcode op, ir::Builtin builtin);

/** One completed recovery episode's cost breakdown. */
struct EpisodeCost
{
    std::string siteTag;   ///< failure-site tag ("assert.f.12")
    uint32_t tid = 0;      ///< recovering thread
    uint64_t retries = 0;  ///< rollbacks performed
    /** Checkpoint-to-failure distance in scheduling ticks at the
     *  episode's first rollback. */
    uint64_t ckptDistanceTicks = 0;
    /** Steps retired between rollback and the site finally passing. */
    uint64_t reexecSteps = 0;
    /** Steps discarded by the episode's rollbacks (work since the
     *  last checkpoint, summed over retries). */
    uint64_t wastedSteps = 0;
    uint64_t backoffTicks = 0; ///< virtual ticks slept between retries
    uint64_t startClock = 0;
    uint64_t endClock = 0;

    bool operator==(const EpisodeCost &) const = default;
};

/**
 * The per-run profiler the VM's hooks feed.  Deterministic: a given
 * (program, VmConfig) run produces bit-identical profiler contents on
 * every execution.
 */
class PhaseProfiler
{
  public:
    /// @{ Hot hooks (called by the interpreter, one branch per site).
    void onStep(uint32_t tid, Phase p);
    void onSteps(uint32_t tid, Phase p, uint64_t n);
    /** Waiting ticks not tied to a retired step (LockWait). */
    void onWait(Phase p, uint64_t ticks);
    /// @}

    /// @{ Recovery lifecycle hooks.
    void onCheckpoint(uint32_t tid);
    /** One rollback at @p tid's failure site; opens the episode on the
     *  first retry.  @p ckptDistanceTicks is schedTicks from the live
     *  checkpoint to this failure. */
    void onRollback(uint32_t tid, const std::string &siteTag,
                    uint64_t ckptDistanceTicks);
    /** Back-off sleep of @p ticks; booked globally and into the open
     *  episode, if any. */
    void onBackoff(uint32_t tid, uint64_t ticks);
    /** The failure site finally passed: closes the episode. */
    void onRecovered(uint32_t tid, uint64_t retries,
                     uint64_t startClock, uint64_t endClock);
    /// @}

    uint64_t phaseTicks(Phase p) const
    {
        return ticks_[size_t(p)];
    }
    /** Sum over all phases (steps + waited ticks). */
    uint64_t totalTicks() const;
    const std::vector<EpisodeCost> &episodes() const
    {
        return episodes_;
    }

    bool empty() const;
    void clear();

  private:
    struct ThreadState
    {
        bool episodeActive = false;
        std::string siteTag;
        uint64_t retries = 0;
        uint64_t ckptDistanceTicks = 0;
        uint64_t reexecSteps = 0;
        uint64_t wastedSteps = 0;
        uint64_t backoffTicks = 0;
        uint64_t stepsSinceCkpt = 0;
    };

    ThreadState &thread(uint32_t tid);

    std::array<uint64_t, kPhaseCount> ticks_{};
    std::vector<ThreadState> threads_;
    std::vector<EpisodeCost> episodes_;
};

/**
 * A mergeable profile aggregate: phase totals plus the recovery-tax
 * rollup.  ScheduleOutcome carries one per profiled schedule; the
 * campaign folds them per (kernel, policy) in matrix order.
 */
struct ProfileAgg
{
    uint64_t ticks[kPhaseCount] = {};
    uint64_t runs = 0; ///< profiled runs folded in

    /// @{ Recovery tax.
    uint64_t episodes = 0;
    uint64_t retries = 0;
    uint64_t reexecSteps = 0;
    uint64_t wastedSteps = 0;
    uint64_t backoffTicks = 0;
    uint64_t ckptDistanceTicks = 0; ///< summed over episodes
    /** Per failure-site tag: episodes and re-executed steps. */
    std::map<std::string, uint64_t> episodesBySite;
    std::map<std::string, uint64_t> reexecBySite;
    /// @}

    /** Folds one finished run's profiler in. */
    void add(const PhaseProfiler &p);
    void merge(const ProfileAgg &o);

    uint64_t totalTicks() const;
    bool empty() const { return runs == 0; }

    /** Mean re-executed steps per episode (0 when episode-free). */
    double reexecPerEpisode() const
    {
        return episodes ? double(reexecSteps) / double(episodes) : 0.0;
    }

    /** Serializes as {"phases": {...}, "recovery_tax": {...}} into an
     *  open writer position.  Deterministic byte-for-byte. */
    void writeJson(JsonWriter &w) const;

    bool operator==(const ProfileAgg &) const = default;
};

} // namespace conair::obs::prof
