#include "obs/profile/profile_export.h"

#include <algorithm>
#include <map>

#include "support/json.h"
#include "support/str.h"

namespace conair::obs::prof {

namespace {

/** Insertion-ordered frame table (speedscope indexes into it). */
struct FrameTable
{
    std::vector<std::string> names;
    std::map<std::string, uint64_t> index;

    uint64_t intern(const std::string &name)
    {
        auto it = index.find(name);
        if (it != index.end())
            return it->second;
        uint64_t i = names.size();
        names.push_back(name);
        index.emplace(name, i);
        return i;
    }
};

struct Sample
{
    std::vector<uint64_t> stack;
    uint64_t weight;
};

void
writeProfile(JsonWriter &w, const std::string &name,
             const char *unit, const std::vector<Sample> &samples)
{
    uint64_t total = 0;
    for (const Sample &s : samples)
        total += s.weight;
    w.beginObject();
    w.key("type").value("sampled");
    w.key("name").value(name);
    w.key("unit").value(unit);
    w.key("startValue").value(uint64_t(0));
    w.key("endValue").value(total);
    w.key("samples").beginArray();
    for (const Sample &s : samples) {
        w.beginArray();
        for (uint64_t f : s.stack)
            w.value(f);
        w.endArray();
    }
    w.endArray();
    w.key("weights").beginArray();
    for (const Sample &s : samples)
        w.value(s.weight);
    w.endArray();
    w.endObject();
}

} // namespace

std::string
speedscopeJson(const ProfileDoc &doc, const std::string &name)
{
    FrameTable frames;
    std::vector<Sample> phaseSamples;
    for (const auto &[label, agg] : doc.phaseGroups) {
        uint64_t g = frames.intern(label);
        for (size_t i = 0; i < kPhaseCount; ++i) {
            if (agg.ticks[i] == 0)
                continue;
            uint64_t p = frames.intern(phaseName(Phase(i)));
            phaseSamples.push_back({{g, p}, agg.ticks[i]});
        }
    }
    std::vector<Sample> wallSamples;
    for (const WallCell &c : doc.wall) {
        if (c.micros == 0)
            continue;
        wallSamples.push_back({{frames.intern(c.kernel),
                                frames.intern(c.policy),
                                frames.intern(c.leg)},
                               c.micros});
    }

    JsonWriter w(2);
    w.beginObject();
    w.key("$schema").value(
        "https://www.speedscope.app/file-format-schema.json");
    w.key("name").value(name);
    w.key("exporter").value("conair-profile");
    w.key("activeProfileIndex").value(uint64_t(0));
    w.key("shared").beginObject();
    w.key("frames").beginArray();
    for (const std::string &f : frames.names) {
        w.beginObject();
        w.key("name").value(f);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.key("profiles").beginArray();
    writeProfile(w, "phases (virtual ticks)", "none", phaseSamples);
    if (!wallSamples.empty())
        writeProfile(w, "campaign wall clock", "microseconds",
                     wallSamples);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
foldedStacks(const ProfileDoc &doc)
{
    std::string out;
    for (const auto &[label, agg] : doc.phaseGroups)
        for (size_t i = 0; i < kPhaseCount; ++i)
            if (agg.ticks[i] > 0)
                out += strfmt("%s;%s %llu\n", label.c_str(),
                              phaseName(Phase(i)),
                              (unsigned long long)agg.ticks[i]);
    for (const WallCell &c : doc.wall)
        if (c.micros > 0)
            out += strfmt("wall;%s;%s;%s %llu\n", c.kernel.c_str(),
                          c.policy.c_str(), c.leg.c_str(),
                          (unsigned long long)c.micros);
    return out;
}

std::string
hotPhaseTable(const ProfileDoc &doc, size_t topN)
{
    ProfileAgg all;
    for (const auto &[label, agg] : doc.phaseGroups)
        all.merge(agg);

    struct Row
    {
        Phase phase;
        uint64_t ticks;
    };
    std::vector<Row> rows;
    for (size_t i = 0; i < kPhaseCount; ++i)
        if (all.ticks[i] > 0)
            rows.push_back({Phase(i), all.ticks[i]});
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.ticks > b.ticks;
                     });
    if (rows.size() > topN)
        rows.resize(topN);

    uint64_t total = all.totalTicks();
    std::string out = strfmt("%-16s %14s %7s\n", "phase", "ticks",
                             "share");
    for (const Row &r : rows)
        out += strfmt("%-16s %14llu %6.1f%%\n", phaseName(r.phase),
                      (unsigned long long)r.ticks,
                      total ? 100.0 * double(r.ticks) / double(total)
                            : 0.0);
    out += strfmt("%-16s %14llu\n", "total", (unsigned long long)total);
    out += strfmt(
        "recovery tax: %llu episodes, %llu retries, %.1f reexec "
        "steps/episode, %llu wasted steps, %llu backoff ticks\n",
        (unsigned long long)all.episodes,
        (unsigned long long)all.retries, all.reexecPerEpisode(),
        (unsigned long long)all.wastedSteps,
        (unsigned long long)all.backoffTicks);
    return out;
}

} // namespace conair::obs::prof
