/**
 * @file
 * Exporters for the recovery-cost profiler: speedscope JSON, folded
 * flamegraph stacks, and the top-N hot-phase table the CLIs print
 * (docs/OBSERVABILITY.md, "Profiling").
 *
 * A ProfileDoc carries both profiler axes:
 *
 *  - *phaseGroups*: the deterministic per-run phase/episode aggregates,
 *    one labelled group per (kernel, policy) — or a single group for a
 *    one-shot run.  Rendering is byte-deterministic (pinned by
 *    tests/obs/profile_golden_test.cpp), so these goldens double as
 *    regression tests of the whole attribution pipeline.
 *
 *  - *wall*: the campaign's wall-clock self-time cells, per
 *    (kernel, policy, leg), folded in matrix order from per-worker
 *    spans.  Values are measured microseconds — present in exports but
 *    never in goldens.
 *
 * Speedscope output is one file with up to two "sampled" profiles:
 * "phases (virtual ticks)" weights each (group, phase) stack by its
 * attributed ticks, and "campaign wall clock" weights each
 * (kernel, policy, leg) stack by its summed span microseconds.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile/profile.h"

namespace conair::obs::prof {

/** One wall-clock self-time cell of a campaign. */
struct WallCell
{
    std::string kernel;
    std::string policy;
    std::string leg; ///< "unhardened", "hardened", "differential", ...
    uint64_t micros = 0;
    uint64_t spans = 0; ///< spans folded into this cell

    bool operator==(const WallCell &) const = default;
};

/** Everything the exporters render. */
struct ProfileDoc
{
    /** Deterministic axis: labelled phase/episode aggregates, in
     *  matrix (or insertion) order. */
    std::vector<std::pair<std::string, ProfileAgg>> phaseGroups;

    /** Wall-clock axis cells (may be empty for one-shot runs). */
    std::vector<WallCell> wall;
};

/** Speedscope JSON (https://www.speedscope.app/file-format-schema.json)
 *  named @p name.  Deterministic given the doc contents. */
std::string speedscopeJson(const ProfileDoc &doc,
                           const std::string &name);

/** Folded flamegraph stacks ("group;phase weight" lines, plus
 *  "wall;kernel;policy;leg micros" lines), flamegraph.pl-compatible. */
std::string foldedStacks(const ProfileDoc &doc);

/** Human-readable top-@p topN hot-phase table over all groups, with
 *  the recovery-tax summary underneath. */
std::string hotPhaseTable(const ProfileDoc &doc, size_t topN = 8);

} // namespace conair::obs::prof
