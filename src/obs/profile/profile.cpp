#include "obs/profile/profile.h"

#include <algorithm>

#include "support/json.h"

namespace conair::obs::prof {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Dispatch: return "dispatch";
      case Phase::Memory: return "memory";
      case Phase::Sync: return "sync";
      case Phase::LockWait: return "lock_wait";
      case Phase::CheckpointSave: return "checkpoint_save";
      case Phase::Rollback: return "rollback";
      case Phase::Reexec: return "reexec";
      case Phase::Backoff: return "backoff";
    }
    return "?";
}

Phase
classifyPhase(ir::Opcode op, ir::Builtin builtin)
{
    switch (op) {
      case ir::Opcode::Load:
      case ir::Opcode::Store:
        return Phase::Memory;
      case ir::Opcode::Call:
        switch (builtin) {
          case ir::Builtin::ThreadCreate:
          case ir::Builtin::ThreadJoin:
          case ir::Builtin::MutexLock:
          case ir::Builtin::MutexUnlock:
          case ir::Builtin::MutexTimedLock:
          case ir::Builtin::Yield:
          case ir::Builtin::Sleep:
            return Phase::Sync;
          case ir::Builtin::Malloc:
          case ir::Builtin::Free:
            return Phase::Memory;
          case ir::Builtin::CaCheckpoint:
          case ir::Builtin::CaCheckpointLocals:
            return Phase::CheckpointSave;
          case ir::Builtin::CaTryRollback:
            return Phase::Rollback;
          case ir::Builtin::CaBackoff:
            return Phase::Backoff;
          default:
            return Phase::Dispatch;
        }
      default:
        return Phase::Dispatch;
    }
}

PhaseProfiler::ThreadState &
PhaseProfiler::thread(uint32_t tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

void
PhaseProfiler::onStep(uint32_t tid, Phase p)
{
    onSteps(tid, p, 1);
}

void
PhaseProfiler::onSteps(uint32_t tid, Phase p, uint64_t n)
{
    ticks_[size_t(p)] += n;
    ThreadState &ts = thread(tid);
    ts.stepsSinceCkpt += n;
    if (p == Phase::Reexec && ts.episodeActive)
        ts.reexecSteps += n;
}

void
PhaseProfiler::onWait(Phase p, uint64_t ticks)
{
    ticks_[size_t(p)] += ticks;
}

void
PhaseProfiler::onCheckpoint(uint32_t tid)
{
    thread(tid).stepsSinceCkpt = 0;
}

void
PhaseProfiler::onRollback(uint32_t tid, const std::string &siteTag,
                          uint64_t ckptDistanceTicks)
{
    ThreadState &ts = thread(tid);
    if (!ts.episodeActive) {
        ts.episodeActive = true;
        ts.siteTag = siteTag;
        ts.retries = 0;
        ts.ckptDistanceTicks = ckptDistanceTicks;
        ts.reexecSteps = 0;
        ts.wastedSteps = 0;
        ts.backoffTicks = 0;
    }
    ++ts.retries;
    // The rollback discards everything executed since the checkpoint:
    // that work is the episode's waste.  Re-execution restarts the
    // window, so the counter resets with it.
    ts.wastedSteps += ts.stepsSinceCkpt;
    ts.stepsSinceCkpt = 0;
}

void
PhaseProfiler::onBackoff(uint32_t tid, uint64_t ticks)
{
    ticks_[size_t(Phase::Backoff)] += ticks;
    ThreadState &ts = thread(tid);
    if (ts.episodeActive)
        ts.backoffTicks += ticks;
}

void
PhaseProfiler::onRecovered(uint32_t tid, uint64_t retries,
                           uint64_t startClock, uint64_t endClock)
{
    ThreadState &ts = thread(tid);
    if (!ts.episodeActive)
        return; // CaRecovered without a preceding rollback: no episode
    EpisodeCost ep;
    ep.siteTag = ts.siteTag;
    ep.tid = tid;
    ep.retries = std::max(retries, ts.retries);
    ep.ckptDistanceTicks = ts.ckptDistanceTicks;
    ep.reexecSteps = ts.reexecSteps;
    ep.wastedSteps = ts.wastedSteps;
    ep.backoffTicks = ts.backoffTicks;
    ep.startClock = startClock;
    ep.endClock = endClock;
    episodes_.push_back(std::move(ep));
    ts.episodeActive = false;
}

uint64_t
PhaseProfiler::totalTicks() const
{
    uint64_t sum = 0;
    for (uint64_t t : ticks_)
        sum += t;
    return sum;
}

bool
PhaseProfiler::empty() const
{
    return totalTicks() == 0 && episodes_.empty();
}

void
PhaseProfiler::clear()
{
    ticks_.fill(0);
    threads_.clear();
    episodes_.clear();
}

void
ProfileAgg::add(const PhaseProfiler &p)
{
    for (size_t i = 0; i < kPhaseCount; ++i)
        ticks[i] += p.phaseTicks(Phase(i));
    ++runs;
    for (const EpisodeCost &ep : p.episodes()) {
        ++episodes;
        retries += ep.retries;
        reexecSteps += ep.reexecSteps;
        wastedSteps += ep.wastedSteps;
        backoffTicks += ep.backoffTicks;
        ckptDistanceTicks += ep.ckptDistanceTicks;
        episodesBySite[ep.siteTag] += 1;
        reexecBySite[ep.siteTag] += ep.reexecSteps;
    }
}

void
ProfileAgg::merge(const ProfileAgg &o)
{
    for (size_t i = 0; i < kPhaseCount; ++i)
        ticks[i] += o.ticks[i];
    runs += o.runs;
    episodes += o.episodes;
    retries += o.retries;
    reexecSteps += o.reexecSteps;
    wastedSteps += o.wastedSteps;
    backoffTicks += o.backoffTicks;
    ckptDistanceTicks += o.ckptDistanceTicks;
    for (const auto &[site, n] : o.episodesBySite)
        episodesBySite[site] += n;
    for (const auto &[site, n] : o.reexecBySite)
        reexecBySite[site] += n;
}

uint64_t
ProfileAgg::totalTicks() const
{
    uint64_t sum = 0;
    for (uint64_t t : ticks)
        sum += t;
    return sum;
}

void
ProfileAgg::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("runs").value(runs);
    w.key("total_ticks").value(totalTicks());
    w.key("phases").beginObject();
    for (size_t i = 0; i < kPhaseCount; ++i)
        w.key(phaseName(Phase(i))).value(ticks[i]);
    w.endObject();
    w.key("recovery_tax").beginObject();
    w.key("episodes").value(episodes);
    w.key("retries").value(retries);
    w.key("reexec_steps").value(reexecSteps);
    w.key("reexec_steps_per_episode")
        .value(reexecPerEpisode(), "%.3f");
    w.key("wasted_steps").value(wastedSteps);
    w.key("backoff_ticks").value(backoffTicks);
    w.key("ckpt_distance_ticks").value(ckptDistanceTicks);
    w.key("by_site").beginObject();
    for (const auto &[site, n] : episodesBySite) {
        w.key(site).beginObject();
        w.key("episodes").value(n);
        auto it = reexecBySite.find(site);
        w.key("reexec_steps")
            .value(it == reexecBySite.end() ? 0 : it->second);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    w.endObject();
}

} // namespace conair::obs::prof
