#include "obs/trace_export.h"

#include <algorithm>
#include <map>

#include "obs/coverage/coverage.h"
#include "support/json.h"
#include "support/str.h"

namespace conair::obs {

namespace {

const char *
kindCategory(EventKind k)
{
    switch (k) {
      case EventKind::ThreadSpawn:
      case EventKind::SchedSwitch:
      case EventKind::SchedPoint:
        return "sched";
      case EventKind::Checkpoint:
      case EventKind::Rollback:
      case EventKind::CompensationFree:
      case EventKind::CompensationUnlock:
      case EventKind::Backoff:
      case EventKind::RecoveryDone:
        return "recovery";
      case EventKind::LockAcquire:
      case EventKind::LockBlock:
      case EventKind::LockTimeout:
        return "lock";
      case EventKind::FailureSite:
        return "failure";
      case EventKind::ChaosRollback:
        return "chaos";
      case EventKind::SharedLoad:
      case EventKind::SharedStore:
        return "mem";
      case EventKind::CoverageNovel:
      case EventKind::CoverageSnapshot:
        return "coverage";
    }
    return "misc";
}

std::string
tsString(uint64_t clock, double microsPerTick)
{
    // One decimal is exact for the default 0.1 µs tick; fixed format
    // keeps the artifact byte-stable.
    return strfmt("%.1f", double(clock) * microsPerTick);
}

void
writeMetadata(JsonWriter &w, uint32_t pid, uint32_t tid,
              const char *metaName, const std::string &name)
{
    w.beginObject();
    w.key("name").value(metaName);
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
}

void
writeEventArgs(JsonWriter &w, const TraceEvent &ev)
{
    w.key("args").beginObject();
    w.key("a").value(ev.a);
    w.key("b").value(ev.b);
    w.key("step").value(ev.step);
    w.key("seq").value(ev.seq);
    if (!ev.tag.empty())
        w.key("tag").value(ev.tag);
    w.endObject();
}

void
writeInstant(JsonWriter &w, const TraceProcess &p, const TraceEvent &ev,
             double microsPerTick)
{
    w.beginObject();
    std::string name = eventKindName(ev.kind);
    if (!ev.tag.empty())
        name += " @" + ev.tag;
    w.key("name").value(name);
    w.key("cat").value(kindCategory(ev.kind));
    w.key("ph").value("i");
    w.key("s").value("t");
    w.key("ts").rawValue(tsString(ev.clock, microsPerTick));
    w.key("pid").value(p.pid);
    w.key("tid").value(ev.tid);
    writeEventArgs(w, ev);
    w.endObject();
}

void
writeDuration(JsonWriter &w, const TraceProcess &p, const std::string &name,
              const char *cat, uint32_t tid, uint64_t startClock,
              uint64_t endClock, double microsPerTick,
              const TraceEvent &closing)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("cat").value(cat);
    w.key("ph").value("X");
    w.key("ts").rawValue(tsString(startClock, microsPerTick));
    double dur = double(endClock - startClock) * microsPerTick;
    w.key("dur").rawValue(strfmt("%.1f", dur));
    w.key("pid").value(p.pid);
    w.key("tid").value(tid);
    writeEventArgs(w, closing);
    w.endObject();
}

void
writeProcess(JsonWriter &w, const TraceProcess &p, double microsPerTick)
{
    const FlightRecorder &rec = *p.recorder;
    writeMetadata(w, p.pid, 0, "process_name", p.name);
    for (uint32_t tid = 0; tid < rec.threadCount(); ++tid)
        writeMetadata(w, p.pid, tid, "thread_name",
                      strfmt("vm-thread %u", tid));

    // Pending lock-wait start clocks, per thread, so a LockAcquire
    // granted after blocking closes a visible wait span.
    std::map<uint32_t, uint64_t> lockWaitStart;

    for (const TraceEvent &ev : rec.merged()) {
        switch (ev.kind) {
          case EventKind::RecoveryDone:
            // b = episode start clock; render the whole episode as a
            // duration block on the recovering thread's track.
            writeDuration(w, p,
                          strfmt("recovery x%llu",
                                 (unsigned long long)ev.a) +
                              (ev.tag.empty() ? "" : " @" + ev.tag),
                          "recovery", ev.tid, ev.b, ev.clock,
                          microsPerTick, ev);
            break;
          case EventKind::LockBlock:
            lockWaitStart[ev.tid] = ev.clock;
            writeInstant(w, p, ev, microsPerTick);
            break;
          case EventKind::LockAcquire:
          case EventKind::LockTimeout: {
            auto it = lockWaitStart.find(ev.tid);
            if (it != lockWaitStart.end()) {
                const char *what = ev.kind == EventKind::LockAcquire
                                       ? "lock-wait"
                                       : "lock-wait (timeout)";
                writeDuration(w, p, what, "lock", ev.tid, it->second,
                              ev.clock, microsPerTick, ev);
                lockWaitStart.erase(it);
            } else {
                writeInstant(w, p, ev, microsPerTick);
            }
            break;
          }
          default:
            writeInstant(w, p, ev, microsPerTick);
            break;
        }
    }
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceProcess> &processes,
                double microsPerTick)
{
    JsonWriter w(2);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const TraceProcess &p : processes)
        if (p.recorder)
            writeProcess(w, p, microsPerTick);
    w.endArray();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    // Per-kind totals survive ring wraparound: this is where aggregate
    // counts stay comparable with RunStats.
    for (size_t pi = 0; pi < processes.size(); ++pi) {
        const TraceProcess &p = processes[pi];
        if (!p.recorder)
            continue;
        w.key(p.name).beginObject();
        w.key("recorded").value(p.recorder->totalRecordedAll());
        w.key("dropped").value(p.recorder->droppedAll());
        w.key("totals").beginObject();
        for (size_t k = 0; k < kEventKindCount; ++k) {
            uint64_t n = p.recorder->totalOf(EventKind(k));
            if (n)
                w.key(eventKindName(EventKind(k))).value(n);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
chromeTraceJson(const FlightRecorder &rec, const std::string &processName,
                double microsPerTick)
{
    return chromeTraceJson({TraceProcess{&rec, processName, 1}},
                           microsPerTick);
}

std::string
recoveryTimeline(const FlightRecorder &rec, double microsPerTick)
{
    std::string out;
    uint64_t shown = 0;
    // Chronological order: annotation events (coverage) are appended
    // after the run with their discovery clocks, so a stable sort by
    // clock interleaves them where they happened.  For VM-recorded
    // events the clock is already non-decreasing in seq order, so
    // this is the identity on unannotated traces.
    std::vector<TraceEvent> events = rec.merged();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &x, const TraceEvent &y) {
                         return x.clock < y.clock;
                     });
    for (const TraceEvent &ev : events) {
        const char *cat = kindCategory(ev.kind);
        // The timeline is the recovery story: scheduling noise and
        // diagnosis-mode memory traffic stay in the full trace.
        if (cat[0] == 's' || cat[0] == 'm') // "sched", "mem"
            continue;
        ++shown;
        out += strfmt("[%10.1f us] t%-2u %-19s",
                      double(ev.clock) * microsPerTick, ev.tid,
                      eventKindName(ev.kind));
        switch (ev.kind) {
          case EventKind::Checkpoint:
            out += strfmt("  locals=%llu schedTicks=%llu",
                          (unsigned long long)ev.a,
                          (unsigned long long)ev.b);
            break;
          case EventKind::Rollback:
            out += strfmt("  retry=%llu ckptDistTicks=%llu",
                          (unsigned long long)ev.a,
                          (unsigned long long)ev.b);
            break;
          case EventKind::CompensationFree:
            out += strfmt("  block=%llu", (unsigned long long)ev.a);
            break;
          case EventKind::CompensationUnlock:
            out += strfmt("  cell=%llu+%llu", (unsigned long long)ev.a,
                          (unsigned long long)ev.b);
            break;
          case EventKind::Backoff:
            out += strfmt("  ticks=%llu", (unsigned long long)ev.a);
            break;
          case EventKind::LockAcquire:
          case EventKind::LockBlock:
          case EventKind::LockTimeout:
            out += strfmt("  cell=%llu", (unsigned long long)ev.a);
            break;
          case EventKind::FailureSite:
            out += strfmt("  outcome=%llu", (unsigned long long)ev.a);
            break;
          case EventKind::ChaosRollback:
            out += strfmt("  step=%llu", (unsigned long long)ev.a);
            break;
          case EventKind::RecoveryDone:
            out += strfmt("  retries=%llu span=%.1fus",
                          (unsigned long long)ev.a,
                          double(ev.clock - ev.b) * microsPerTick);
            break;
          case EventKind::CoverageNovel:
            out += strfmt("  edge=%016llx kind=%s",
                          (unsigned long long)ev.a,
                          cov::edgeKindName(cov::EdgeKind(ev.b)));
            break;
          case EventKind::CoverageSnapshot:
            out += strfmt("  distinct=%llu novel=%llu",
                          (unsigned long long)ev.a,
                          (unsigned long long)ev.b);
            break;
          default:
            break;
        }
        if (!ev.tag.empty())
            out += "  @" + ev.tag;
        out += '\n';
    }
    if (shown == 0)
        out = "(no recovery-relevant events recorded)\n";
    uint64_t droppedTotal = rec.droppedAll();
    if (droppedTotal)
        out += strfmt("... %llu earlier events dropped by ring "
                      "wraparound (totals remain exact)\n",
                      (unsigned long long)droppedTotal);
    return out;
}

} // namespace conair::obs
